//! Hypercall service implementations.
//!
//! Every service validates its raw arguments in a *documented, canonical
//! order* — the robustness oracle (`skrt::oracle`) mirrors this order, and
//! the fault-masking analysis (paper Fig. 7) depends on it: a parameter is
//! only reached once every earlier parameter validated successfully.
//!
//! Services marked *legacy-defective* consult [`crate::vuln::VulnFlags`]
//! and reproduce the exact failure behaviours of paper Section IV.

use crate::config::{PortDirection, PortKind};
use crate::hm::HmEventKind;
use crate::hypercall::{HypercallId, RawHypercall};
use crate::ipc::IpcError;
use crate::kernel::{HcResult, NoReturnKind, XmKernel, VIRQ_SHUTDOWN};
use crate::observe::{OpsEvent, ResetKind};
use crate::partition::PartitionStatus;
use crate::retcode::XmRet;
use crate::types::{XM_EXEC_CLOCK, XM_HW_CLOCK};
use leon3_sim::addrspace::{AccessCtx, AccessKind};

/// Numeric encoding of partition status for status hypercalls.
pub fn status_code(s: PartitionStatus) -> u32 {
    match s {
        PartitionStatus::Ready => 1,
        PartitionStatus::Running => 2,
        PartitionStatus::Suspended => 3,
        PartitionStatus::Idle => 4,
        PartitionStatus::Halted => 5,
        PartitionStatus::Shutdown => 6,
    }
}

/// Numeric encoding of HM event classes for `XM_hm_read`.
pub fn hm_class_code(kind: &HmEventKind) -> u32 {
    match kind {
        HmEventKind::PartitionTrap { .. } => 1,
        HmEventKind::KernelTrap { .. } => 2,
        HmEventKind::SchedOverrun { .. } => 3,
        HmEventKind::PartitionRaised { .. } => 4,
    }
}

const OK: HcResult = HcResult::Ret(0);

fn ret(code: XmRet) -> HcResult {
    HcResult::Ret(code.code())
}

fn ipc_err(e: IpcError) -> HcResult {
    ret(match e {
        IpcError::NoSuchChannel | IpcError::GeometryMismatch => XmRet::InvalidConfig,
        IpcError::NotParticipant => XmRet::PermError,
        IpcError::WrongDirection => XmRet::OpNotAllowed,
        IpcError::AlreadyCreated => XmRet::NoAction,
        IpcError::BadDescriptor | IpcError::NotOwner | IpcError::BadSize => XmRet::InvalidParam,
        IpcError::QueueFull | IpcError::Empty => XmRet::NotAvailable,
    })
}

impl XmKernel {
    // ----- caller-context memory helpers (parameter validation) -----

    fn svc_check(
        &self,
        caller: u32,
        addr: u32,
        len: u32,
        align: u32,
        kind: AccessKind,
    ) -> Result<(), XmRet> {
        self.machine
            .mem
            .check(AccessCtx::Partition(caller), addr, len, align, kind)
            .map_err(|_| XmRet::InvalidParam)
    }

    fn svc_read_bytes(&self, caller: u32, addr: u32, len: u32) -> Result<Vec<u8>, XmRet> {
        self.machine
            .mem
            .read_bytes(AccessCtx::Partition(caller), addr, len)
            .map_err(|_| XmRet::InvalidParam)
    }

    fn svc_read_bytes_into(
        &self,
        caller: u32,
        addr: u32,
        len: u32,
        out: &mut Vec<u8>,
    ) -> Result<(), XmRet> {
        self.machine
            .mem
            .read_bytes_into(AccessCtx::Partition(caller), addr, len, out)
            .map_err(|_| XmRet::InvalidParam)
    }

    fn svc_write_bytes(&mut self, caller: u32, addr: u32, data: &[u8]) -> Result<(), XmRet> {
        self.machine
            .mem
            .write_bytes(AccessCtx::Partition(caller), addr, data)
            .map_err(|_| XmRet::InvalidParam)
    }

    fn svc_write_u32s(&mut self, caller: u32, addr: u32, words: &[u32]) -> Result<(), XmRet> {
        // One range check, then consecutive stores — the whole-range
        // validation means partial writes never happen, exactly as the
        // old per-word path guaranteed.
        self.machine
            .mem
            .write_u32s(AccessCtx::Partition(caller), addr, words)
            .map_err(|_| XmRet::InvalidParam)
    }

    fn svc_read_u32(&self, caller: u32, addr: u32) -> Result<u32, XmRet> {
        self.machine
            .mem
            .read_u32(AccessCtx::Partition(caller), addr)
            .map_err(|_| XmRet::InvalidParam)
    }

    fn svc_write_u64(&mut self, caller: u32, addr: u32, v: u64) -> Result<(), XmRet> {
        self.machine
            .mem
            .write_u64(AccessCtx::Partition(caller), addr, v)
            .map_err(|_| XmRet::InvalidParam)
    }

    /// Reads a NUL-terminated name of at most 31 bytes from caller memory.
    /// Scans region-contiguous runs instead of issuing a permission check
    /// per byte; permissions are uniform within a region, so a fault
    /// surfaces at exactly the byte the per-byte loop would have faulted
    /// on, and a NUL inside a readable run still wins over a fault after
    /// it.
    fn svc_read_cstring(&self, caller: u32, addr: u32, max: u32) -> Result<String, XmRet> {
        let mut out = Vec::with_capacity(max as usize);
        let mut pos = 0u32;
        while pos < max {
            let run = self
                .machine
                .mem
                .read_run(AccessCtx::Partition(caller), addr.wrapping_add(pos), max - pos)
                .map_err(|_| XmRet::InvalidParam)?;
            match run.iter().position(|&b| b == 0) {
                Some(n) => {
                    out.extend_from_slice(&run[..n]);
                    return String::from_utf8(out).map_err(|_| XmRet::InvalidParam);
                }
                None => {
                    out.extend_from_slice(run);
                    pos += run.len() as u32;
                }
            }
        }
        Err(XmRet::InvalidParam) // unterminated
    }

    fn valid_part(&self, id: i32) -> Option<usize> {
        if id >= 0 && (id as usize) < self.parts.len() {
            Some(id as usize)
        } else {
            None
        }
    }

    fn is_system(&self, caller: u32) -> bool {
        self.cfg.partitions[caller as usize].system
    }

    // ----- dispatch -----

    /// Routes a raw hypercall to its service. Returns the outcome and any
    /// extra execution-time cost beyond the fixed hypercall cost.
    pub(crate) fn dispatch(&mut self, caller: u32, hc: &RawHypercall) -> (HcResult, u64) {
        use HypercallId as H;
        match hc.id {
            H::HaltSystem => (self.svc_halt_system(caller), 0),
            H::ResetSystem => (self.svc_reset_system(caller, hc.arg32(0)), 0),
            H::GetSystemStatus => (self.svc_get_system_status(caller, hc.arg32(0)), 0),
            H::HaltPartition => (self.svc_halt_partition(caller, hc.arg_s32(0)), 0),
            H::ResetPartition => {
                (self.svc_reset_partition(caller, hc.arg_s32(0), hc.arg32(1), hc.arg32(2)), 0)
            }
            H::SuspendPartition => (self.svc_suspend_partition(caller, hc.arg_s32(0)), 0),
            H::ResumePartition => (self.svc_resume_partition(caller, hc.arg_s32(0)), 0),
            H::ShutdownPartition => (self.svc_shutdown_partition(caller, hc.arg_s32(0)), 0),
            H::GetPartitionStatus => {
                (self.svc_get_partition_status(caller, hc.arg_s32(0), hc.arg32(1)), 0)
            }
            H::SetPartitionOpMode => (self.svc_set_partition_opmode(caller, hc.arg_s32(0)), 0),
            H::IdleSelf => (self.svc_idle_self(caller), 0),
            H::SuspendSelf => (self.svc_suspend_self(caller), 0),
            H::ParamsGetPct => (self.svc_params_get_pct(caller), 0),
            H::GetTime => (self.svc_get_time(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::SetTimer => {
                (self.svc_set_timer(caller, hc.arg32(0), hc.arg_s64(1), hc.arg_s64(2)), 0)
            }
            H::SwitchSchedPlan => {
                (self.svc_switch_sched_plan(caller, hc.arg_s32(0), hc.arg32(1)), 0)
            }
            H::GetPlanStatus => (self.svc_get_plan_status(caller, hc.arg32(0)), 0),
            H::CreateSamplingPort => (
                self.svc_create_port(
                    caller,
                    hc.arg32(0),
                    hc.arg32(1),
                    None,
                    hc.arg32(2),
                    PortKind::Sampling,
                ),
                0,
            ),
            H::WriteSamplingMessage => {
                (self.svc_write_sampling(caller, hc.arg_s32(0), hc.arg32(1), hc.arg32(2)), 0)
            }
            H::ReadSamplingMessage => (
                self.svc_read_sampling(
                    caller,
                    hc.arg_s32(0),
                    hc.arg32(1),
                    hc.arg32(2),
                    hc.arg32(3),
                ),
                0,
            ),
            H::CreateQueuingPort => (
                self.svc_create_port(
                    caller,
                    hc.arg32(0),
                    hc.arg32(2),
                    Some(hc.arg32(1)),
                    hc.arg32(3),
                    PortKind::Queuing,
                ),
                0,
            ),
            H::SendQueuingMessage => {
                (self.svc_send_queuing(caller, hc.arg_s32(0), hc.arg32(1), hc.arg32(2)), 0)
            }
            H::ReceiveQueuingMessage => (
                self.svc_receive_queuing(
                    caller,
                    hc.arg_s32(0),
                    hc.arg32(1),
                    hc.arg32(2),
                    hc.arg32(3),
                ),
                0,
            ),
            H::GetSamplingPortStatus => {
                (self.svc_port_status(caller, hc.arg_s32(0), hc.arg32(1), PortKind::Sampling), 0)
            }
            H::GetQueuingPortStatus => {
                (self.svc_port_status(caller, hc.arg_s32(0), hc.arg32(1), PortKind::Queuing), 0)
            }
            H::FlushPort => (self.svc_flush_port(caller, hc.arg_s32(0)), 0),
            H::FlushAllPorts => (self.svc_flush_all_ports(caller), 0),
            H::MemoryCopy => {
                (self.svc_memory_copy(caller, hc.arg32(0), hc.arg32(1), hc.arg32(2)), 0)
            }
            H::UpdatePage32 => (self.svc_update_page32(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::HmOpen => (self.svc_hm_open(), 0),
            H::HmRead => (self.svc_hm_read(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::HmSeek => (self.svc_hm_seek(hc.arg_s32(0), hc.arg32(1)), 0),
            H::HmStatus => (self.svc_hm_status(caller, hc.arg32(0)), 0),
            H::HmRaiseEvent => (self.svc_hm_raise_event(caller, hc.arg32(0)), 0),
            H::TraceOpen => (self.svc_trace_open(caller, hc.arg_s32(0)), 0),
            H::TraceEvent => (self.svc_trace_event(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::TraceRead => (self.svc_trace_read(caller, hc.arg_s32(0), hc.arg32(1)), 0),
            H::TraceSeek => {
                (self.svc_trace_seek(caller, hc.arg_s32(0), hc.arg_s32(1), hc.arg32(2)), 0)
            }
            H::TraceStatus => (self.svc_trace_status(caller, hc.arg_s32(0), hc.arg32(1)), 0),
            H::ClearIrqMask => (self.svc_clear_irqmask(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::SetIrqMask => (self.svc_set_irqmask(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::SetIrqPend => (self.svc_set_irqpend(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::RouteIrq => (self.svc_route_irq(hc.arg32(0), hc.arg32(1), hc.arg32(2)), 0),
            H::DisableIrqs => (self.svc_disable_irqs(caller), 0),
            H::Multicall => self.svc_multicall(caller, hc.arg32(0), hc.arg32(1)),
            H::FlushCache => (self.svc_flush_cache(hc.arg32(0)), 0),
            H::SetCacheState => (self.svc_set_cache_state(hc.arg32(0)), 0),
            H::GetGidByName => (self.svc_get_gid_by_name(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::WriteConsole => (self.svc_write_console(caller, hc.arg32(0), hc.arg_s32(1)), 0),
            H::SparcAtomicAdd => {
                (self.svc_sparc_atomic(caller, hc.arg32(0), hc.arg32(1), AtomicOp::Add), 0)
            }
            H::SparcAtomicAnd => {
                (self.svc_sparc_atomic(caller, hc.arg32(0), hc.arg32(1), AtomicOp::And), 0)
            }
            H::SparcAtomicOr => {
                (self.svc_sparc_atomic(caller, hc.arg32(0), hc.arg32(1), AtomicOp::Or), 0)
            }
            H::SparcInPort => (self.svc_sparc_inport(caller, hc.arg32(0), hc.arg32(1)), 0),
            H::SparcOutPort => (self.svc_sparc_outport(hc.arg32(0), hc.arg32(1)), 0),
            H::SparcGetPsr => (HcResult::Ret(self.sparc[caller as usize].psr as i32), 0),
            H::SparcSetPsr => (self.svc_sparc_set_psr(caller, hc.arg32(0)), 0),
            H::SparcEnableTraps => (self.svc_sparc_traps(caller, true), 0),
            H::SparcDisableTraps => (self.svc_sparc_traps(caller, false), 0),
            H::SparcSetPil => (self.svc_sparc_set_pil(caller, hc.arg32(0)), 0),
            H::SparcAckIrq => (self.svc_sparc_ackirq(hc.arg32(0)), 0),
            H::SparcIFlush => (self.svc_sparc_iflush(caller, hc.arg32(0), hc.arg32(1)), 0),
        }
    }

    // ----- system management -----

    fn svc_halt_system(&mut self, caller: u32) -> HcResult {
        self.ops_push(OpsEvent::SystemHalt { by: caller });
        self.halt_kernel(crate::kernel::HaltReason::HaltCall);
        HcResult::NoReturn(NoReturnKind::SystemHalt)
    }

    /// Legacy-defective: "XM fails to correctly check the mode parameter
    /// and an unexpected system reset is invoked for invalid modes."
    fn svc_reset_system(&mut self, caller: u32, mode: u32) -> HcResult {
        let kind = if self.flags.reset_system_mode_unchecked {
            // The defective decoder only looks at bit 0.
            if mode & 1 == 1 {
                ResetKind::Warm
            } else {
                ResetKind::Cold
            }
        } else {
            match mode {
                0 => ResetKind::Cold,
                1 => ResetKind::Warm,
                _ => return ret(XmRet::InvalidParam),
            }
        };
        self.ops_push(OpsEvent::SystemReset { requested_mode: mode, performed: kind, by: caller });
        self.do_system_reset(kind);
        HcResult::NoReturn(match kind {
            ResetKind::Cold => NoReturnKind::SystemColdReset,
            ResetKind::Warm => NoReturnKind::SystemWarmReset,
        })
    }

    fn svc_get_system_status(&mut self, caller: u32, ptr: u32) -> HcResult {
        let words = [
            self.cold_resets,
            self.warm_resets,
            self.hm.len() as u32,
            self.sched.frames_completed as u32,
        ];
        match self.svc_write_u32s(caller, ptr, &words) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    // ----- partition management -----

    fn svc_halt_partition(&mut self, caller: u32, id: i32) -> HcResult {
        let Some(idx) = self.valid_part(id) else { return ret(XmRet::InvalidParam) };
        if self.parts[idx].status == PartitionStatus::Halted {
            return ret(XmRet::NoAction);
        }
        self.parts[idx].status = PartitionStatus::Halted;
        self.ops_push(OpsEvent::PartitionHalted { target: idx as u32, by: caller });
        if idx as u32 == caller {
            HcResult::NoReturn(NoReturnKind::CallerHalted)
        } else {
            OK
        }
    }

    fn svc_reset_partition(&mut self, caller: u32, id: i32, mode: u32, status: u32) -> HcResult {
        let Some(idx) = self.valid_part(id) else { return ret(XmRet::InvalidParam) };
        if mode > 1 {
            return ret(XmRet::InvalidParam);
        }
        self.parts[idx].reset(mode, status);
        self.hw_vtimers[idx].disarm();
        self.recompute_vtimer_horizon();
        self.ops_push(OpsEvent::PartitionReset { target: idx as u32, mode, by: caller });
        if idx as u32 == caller {
            HcResult::NoReturn(NoReturnKind::CallerReset)
        } else {
            OK
        }
    }

    fn svc_suspend_partition(&mut self, caller: u32, id: i32) -> HcResult {
        let Some(idx) = self.valid_part(id) else { return ret(XmRet::InvalidParam) };
        match self.parts[idx].status {
            PartitionStatus::Halted | PartitionStatus::Shutdown => ret(XmRet::InvalidMode),
            PartitionStatus::Suspended => ret(XmRet::NoAction),
            _ => {
                self.parts[idx].status = PartitionStatus::Suspended;
                self.ops_push(OpsEvent::PartitionSuspended { target: idx as u32, by: caller });
                if idx as u32 == caller {
                    HcResult::NoReturn(NoReturnKind::CallerSuspended)
                } else {
                    OK
                }
            }
        }
    }

    fn svc_resume_partition(&mut self, caller: u32, id: i32) -> HcResult {
        let Some(idx) = self.valid_part(id) else { return ret(XmRet::InvalidParam) };
        match self.parts[idx].status {
            PartitionStatus::Halted | PartitionStatus::Shutdown => ret(XmRet::InvalidMode),
            PartitionStatus::Suspended => {
                self.parts[idx].status = PartitionStatus::Ready;
                self.ops_push(OpsEvent::PartitionResumed { target: idx as u32, by: caller });
                OK
            }
            _ => ret(XmRet::NoAction),
        }
    }

    fn svc_shutdown_partition(&mut self, caller: u32, id: i32) -> HcResult {
        let Some(idx) = self.valid_part(id) else { return ret(XmRet::InvalidParam) };
        if self.parts[idx].status == PartitionStatus::Halted {
            return ret(XmRet::InvalidMode);
        }
        self.parts[idx].status = PartitionStatus::Shutdown;
        self.parts[idx].pending_virqs |= VIRQ_SHUTDOWN;
        self.ops_push(OpsEvent::PartitionShutdown { target: idx as u32, by: caller });
        if idx as u32 == caller {
            HcResult::NoReturn(NoReturnKind::CallerShutdown)
        } else {
            OK
        }
    }

    fn svc_get_partition_status(&mut self, caller: u32, id: i32, ptr: u32) -> HcResult {
        let Some(idx) = self.valid_part(id) else { return ret(XmRet::InvalidParam) };
        if idx as u32 != caller && !self.is_system(caller) {
            return ret(XmRet::PermError);
        }
        let p = &self.parts[idx];
        let words =
            [status_code(p.status), p.reset_count, p.exec_us as u32, (p.exec_us >> 32) as u32];
        match self.svc_write_u32s(caller, ptr, &words) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    fn svc_set_partition_opmode(&mut self, caller: u32, op: i32) -> HcResult {
        if !(0..=3).contains(&op) {
            return ret(XmRet::InvalidParam);
        }
        self.parts[caller as usize].op_mode = op;
        OK
    }

    fn svc_idle_self(&mut self, caller: u32) -> HcResult {
        self.parts[caller as usize].status = PartitionStatus::Idle;
        HcResult::NoReturn(NoReturnKind::CallerIdled)
    }

    fn svc_suspend_self(&mut self, caller: u32) -> HcResult {
        self.parts[caller as usize].status = PartitionStatus::Suspended;
        self.ops_push(OpsEvent::PartitionSuspended { target: caller, by: caller });
        HcResult::NoReturn(NoReturnKind::CallerSuspended)
    }

    fn svc_params_get_pct(&mut self, caller: u32) -> HcResult {
        self.parts[caller as usize].pct_queried = true;
        OK
    }

    // ----- time management -----

    fn svc_get_time(&mut self, caller: u32, clock: u32, ptr: u32) -> HcResult {
        let value = match clock {
            XM_HW_CLOCK => self.machine.now(),
            XM_EXEC_CLOCK => self.parts[caller as usize].exec_us,
            _ => return ret(XmRet::InvalidParam),
        };
        match self.svc_write_u64(caller, ptr, value) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    /// Legacy-defective (three distinct findings in the paper):
    /// tiny intervals recurse the handler (HW clock → kernel stack
    /// overflow; EXEC clock → hardware trap storm that kills the
    /// simulator), and negative intervals are silently accepted.
    fn svc_set_timer(&mut self, caller: u32, clock: u32, abs: i64, interval: i64) -> HcResult {
        if clock != XM_HW_CLOCK && clock != XM_EXEC_CLOCK {
            return ret(XmRet::InvalidParam);
        }
        if abs < 0 {
            return ret(XmRet::InvalidParam);
        }
        if interval < 0 && !self.flags.set_timer_negative_interval_accepted {
            return ret(XmRet::InvalidParam);
        }
        if interval > 0
            && interval < self.cfg.tuning.min_timer_interval_us
            && !self.flags.set_timer_no_min_interval
        {
            return ret(XmRet::InvalidParam);
        }
        match clock {
            XM_HW_CLOCK => {
                self.hw_vtimers[caller as usize].arm(abs, interval);
                // Keep the event horizon a valid lower bound (`abs >= 0`
                // was validated above). A min-merge suffices here: if the
                // re-arm moved this timer's deadline later, the horizon is
                // merely conservative, which only costs a redundant scan.
                self.vtimer_horizon = self.vtimer_horizon.min(abs as u64);
            }
            _ => {
                // EXEC clock: implemented on the spare hardware timer unit,
                // re-programmed while the partition runs. A 1 µs period
                // floods the interrupt controller — the TSIM crash.
                let expiry = (abs as u64).max(self.machine.now());
                let period = if interval > 0 { Some(interval as u64) } else { None };
                self.exec_timer_owner = Some(caller);
                self.machine.timers.arm(1, expiry.max(self.machine.now() + 1), period);
            }
        }
        OK
    }

    // ----- plan management -----

    fn svc_switch_sched_plan(&mut self, caller: u32, new_plan: i32, cur_ptr: u32) -> HcResult {
        if new_plan < 0 || self.cfg.plans.iter().all(|p| p.id != new_plan as u32) {
            return ret(XmRet::InvalidParam);
        }
        let cur = self.sched.current_plan_id();
        if let Err(e) = self.svc_write_u32s(caller, cur_ptr, &[cur]) {
            return ret(e);
        }
        self.sched.request_switch(new_plan);
        self.ops_push(OpsEvent::PlanSwitchRequested { from: cur, to: new_plan as u32, by: caller });
        OK
    }

    fn svc_get_plan_status(&mut self, caller: u32, ptr: u32) -> HcResult {
        let words = [
            self.sched.current_plan_id(),
            self.sched.pending_plan_id().map(|p| p + 1).unwrap_or(0),
            self.sched.frames_completed as u32,
        ];
        match self.svc_write_u32s(caller, ptr, &words) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    // ----- inter-partition communication -----

    fn svc_create_port(
        &mut self,
        caller: u32,
        name_ptr: u32,
        max_msg_size: u32,
        max_msgs: Option<u32>,
        direction: u32,
        kind: PortKind,
    ) -> HcResult {
        let name = match self.svc_read_cstring(caller, name_ptr, 32) {
            Ok(n) => n,
            Err(e) => return ret(e),
        };
        let dir = match direction {
            0 => PortDirection::Source,
            1 => PortDirection::Destination,
            _ => return ret(XmRet::InvalidParam),
        };
        match self.ports.create_port(caller, &name, kind, max_msg_size, max_msgs, dir) {
            Ok(desc) => {
                flightrec::record_timeless(
                    flightrec::EventKind::PortCreated,
                    caller as u16,
                    desc as u32,
                    match dir {
                        PortDirection::Source => 0,
                        PortDirection::Destination => 1,
                    },
                    match kind {
                        PortKind::Sampling => 0,
                        PortKind::Queuing => 1,
                    },
                );
                HcResult::Ret(desc)
            }
            Err(e) => ipc_err(e),
        }
    }

    fn svc_write_sampling(&mut self, caller: u32, desc: i32, msg_ptr: u32, size: u32) -> HcResult {
        let (kind, _, max) = match self.ports.port_status(caller, desc) {
            Ok(s) => s,
            Err(e) => return ipc_err(e),
        };
        if kind != PortKind::Sampling {
            return ret(XmRet::InvalidParam);
        }
        if size == 0 || size > max {
            return ret(XmRet::InvalidParam);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let r = match self.svc_read_bytes_into(caller, msg_ptr, size, &mut scratch) {
            // Stage instead of landing: the slot's writes to one channel
            // coalesce into a last-value buffer committed at slot end (or
            // at the first operation that could observe sampling state).
            // `sampling_write_target` runs exactly the checks the eager
            // write would, so the returned code is unchanged.
            Ok(()) => match self.ports.sampling_write_target(caller, desc, scratch.len()) {
                Ok(ci) => {
                    let st = &mut self.port_stage[ci];
                    if st.writes == 0 {
                        self.stage_dirty.push(ci as u32);
                    }
                    st.writes += 1;
                    st.buf.clear();
                    st.buf.extend_from_slice(&scratch);
                    OK
                }
                Err(e) => ipc_err(e),
            },
            Err(e) => ret(e),
        };
        self.scratch = scratch;
        r
    }

    fn svc_read_sampling(
        &mut self,
        caller: u32,
        desc: i32,
        msg_ptr: u32,
        size: u32,
        flags_ptr: u32,
    ) -> HcResult {
        // Reading observes sampling state: land staged writes first.
        self.commit_port_stage();
        let (kind, _, _) = match self.ports.port_status(caller, desc) {
            Ok(s) => s,
            Err(e) => return ipc_err(e),
        };
        if kind != PortKind::Sampling {
            return ret(XmRet::InvalidParam);
        }
        if size == 0 {
            return ret(XmRet::InvalidParam);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let r = match self.ports.read_sampling_into(caller, desc, size, &mut scratch) {
            Ok(seq) => match self.svc_write_bytes(caller, msg_ptr, &scratch) {
                Ok(()) => match self.svc_write_u32s(caller, flags_ptr, &[seq as u32]) {
                    Ok(()) => OK,
                    Err(e) => ret(e),
                },
                Err(e) => ret(e),
            },
            Err(e) => ipc_err(e),
        };
        self.scratch = scratch;
        r
    }

    fn svc_send_queuing(&mut self, caller: u32, desc: i32, msg_ptr: u32, size: u32) -> HcResult {
        let (kind, _, max) = match self.ports.port_status(caller, desc) {
            Ok(s) => s,
            Err(e) => return ipc_err(e),
        };
        if kind != PortKind::Queuing {
            return ret(XmRet::InvalidParam);
        }
        if size == 0 || size > max {
            return ret(XmRet::InvalidParam);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let r = match self.svc_read_bytes_into(caller, msg_ptr, size, &mut scratch) {
            Ok(()) => match self.ports.send_queuing_from(caller, desc, &scratch) {
                Ok(()) => OK,
                Err(e) => ipc_err(e),
            },
            Err(e) => ret(e),
        };
        self.scratch = scratch;
        r
    }

    fn svc_receive_queuing(
        &mut self,
        caller: u32,
        desc: i32,
        msg_ptr: u32,
        size: u32,
        recv_ptr: u32,
    ) -> HcResult {
        let (kind, _, _) = match self.ports.port_status(caller, desc) {
            Ok(s) => s,
            Err(e) => return ipc_err(e),
        };
        if kind != PortKind::Queuing {
            return ret(XmRet::InvalidParam);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let r = match self.ports.receive_queuing_into(caller, desc, size, &mut scratch) {
            Ok(n) => match self.svc_write_bytes(caller, msg_ptr, &scratch) {
                Ok(()) => match self.svc_write_u32s(caller, recv_ptr, &[n as u32]) {
                    Ok(()) => OK,
                    Err(e) => ret(e),
                },
                Err(e) => ret(e),
            },
            Err(e) => ipc_err(e),
        };
        self.scratch = scratch;
        r
    }

    fn svc_port_status(&mut self, caller: u32, desc: i32, ptr: u32, want: PortKind) -> HcResult {
        // The level of a sampling port observes staged state: commit first.
        self.commit_port_stage();
        let (kind, level, max) = match self.ports.port_status(caller, desc) {
            Ok(s) => s,
            Err(e) => return ipc_err(e),
        };
        if kind != want {
            return ret(XmRet::InvalidParam);
        }
        match self.svc_write_u32s(caller, ptr, &[level, max]) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    fn svc_flush_port(&mut self, caller: u32, desc: i32) -> HcResult {
        // Flushing discards the *landed* sample; staged writes must land
        // first so the flush erases exactly what the eager path would.
        self.commit_port_stage();
        match self.ports.flush_port(caller, desc) {
            Ok(_) => OK,
            Err(e) => ipc_err(e),
        }
    }

    fn svc_flush_all_ports(&mut self, caller: u32) -> HcResult {
        self.commit_port_stage();
        self.ports.flush_all(caller);
        OK
    }

    // ----- memory management -----

    fn svc_memory_copy(&mut self, caller: u32, dst: u32, src: u32, size: u32) -> HcResult {
        if size == 0 {
            return ret(XmRet::NoAction);
        }
        // Both ranges must be accessible *to the caller* — this is the
        // validation XM_multicall lacks on the legacy build.
        if self.svc_check(caller, src, size, 1, AccessKind::Read).is_err()
            || self.svc_check(caller, dst, size, 1, AccessKind::Write).is_err()
        {
            return ret(XmRet::InvalidParam);
        }
        match self.machine.mem.copy(AccessCtx::Kernel, dst, src, size) {
            Ok(()) => OK,
            Err(_) => ret(XmRet::InvalidParam),
        }
    }

    fn svc_update_page32(&mut self, caller: u32, addr: u32, value: u32) -> HcResult {
        if self.svc_check(caller, addr, 4, 4, AccessKind::Write).is_err() {
            return ret(XmRet::InvalidParam);
        }
        let _ = self.machine.mem.write_u32(AccessCtx::Kernel, addr, value);
        OK
    }

    // ----- health monitor management -----

    fn svc_hm_open(&mut self) -> HcResult {
        if self.hm.opened {
            return ret(XmRet::NoAction);
        }
        self.hm.opened = true;
        OK
    }

    fn svc_hm_read(&mut self, caller: u32, ptr: u32, count: u32) -> HcResult {
        let avail = self.hm.len().saturating_sub(self.hm.cursor);
        let n = (count as usize).min(avail);
        if n == 0 {
            return HcResult::Ret(0);
        }
        if self.svc_check(caller, ptr, (n * 16) as u32, 4, AccessKind::Write).is_err() {
            return ret(XmRet::InvalidParam);
        }
        let entries = self.hm.read(n);
        let mut words = Vec::with_capacity(n * 4);
        for e in &entries {
            words.push(e.time as u32);
            words.push((e.time >> 32) as u32);
            words.push(hm_class_code(&e.kind));
            words.push(e.partition.map(|p| p + 1).unwrap_or(0));
        }
        match self.svc_write_u32s(caller, ptr, &words) {
            Ok(()) => HcResult::Ret(n as i32),
            Err(e) => ret(e),
        }
    }

    fn svc_hm_seek(&mut self, offset: i32, whence: u32) -> HcResult {
        if whence > 2 {
            return ret(XmRet::InvalidParam);
        }
        match self.hm.seek(offset as i64, whence) {
            Some(_) => OK,
            None => ret(XmRet::InvalidParam),
        }
    }

    fn svc_hm_status(&mut self, caller: u32, ptr: u32) -> HcResult {
        let words = [
            self.hm.len() as u32,
            self.hm.cursor as u32,
            self.hm.dropped as u32,
            (self.hm.dropped >> 32) as u32,
        ];
        match self.svc_write_u32s(caller, ptr, &words) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    fn svc_hm_raise_event(&mut self, caller: u32, code: u32) -> HcResult {
        self.hm_event(HmEventKind::PartitionRaised { code }, Some(caller));
        OK
    }

    // ----- trace management -----

    fn trace_desc_check(&self, caller: u32, td: i32) -> Result<usize, XmRet> {
        let idx = self.valid_part(td).ok_or(XmRet::InvalidParam)?;
        if idx as u32 != caller && !self.is_system(caller) {
            return Err(XmRet::PermError);
        }
        Ok(idx)
    }

    fn svc_trace_open(&mut self, caller: u32, id: i32) -> HcResult {
        match self.trace_desc_check(caller, id) {
            Ok(idx) => HcResult::Ret(idx as i32),
            Err(e) => ret(e),
        }
    }

    fn svc_trace_event(&mut self, caller: u32, bitmask: u32, ptr: u32) -> HcResult {
        if bitmask == 0 {
            return ret(XmRet::NoAction);
        }
        let payload = match self.svc_read_u32(caller, ptr) {
            Ok(v) => v,
            Err(e) => return ret(e),
        };
        let rec = crate::trace::TraceRecord {
            time: self.machine.now(),
            partition: caller,
            bitmask,
            payload,
        };
        self.traces[caller as usize].emit(rec);
        OK
    }

    fn svc_trace_read(&mut self, caller: u32, td: i32, ptr: u32) -> HcResult {
        let idx = match self.trace_desc_check(caller, td) {
            Ok(i) => i,
            Err(e) => return ret(e),
        };
        if self.svc_check(caller, ptr, 16, 4, AccessKind::Write).is_err() {
            return ret(XmRet::InvalidParam);
        }
        let rec = match self.traces[idx].read() {
            Some(r) => r,
            None => return ret(XmRet::NotAvailable),
        };
        let words = [rec.time as u32, (rec.time >> 32) as u32, rec.bitmask, rec.payload];
        match self.svc_write_u32s(caller, ptr, &words) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    fn svc_trace_seek(&mut self, caller: u32, td: i32, offset: i32, whence: u32) -> HcResult {
        let idx = match self.trace_desc_check(caller, td) {
            Ok(i) => i,
            Err(e) => return ret(e),
        };
        if whence > 2 {
            return ret(XmRet::InvalidParam);
        }
        match self.traces[idx].seek(offset as i64, whence) {
            Some(_) => OK,
            None => ret(XmRet::InvalidParam),
        }
    }

    fn svc_trace_status(&mut self, caller: u32, td: i32, ptr: u32) -> HcResult {
        let idx = match self.trace_desc_check(caller, td) {
            Ok(i) => i,
            Err(e) => return ret(e),
        };
        let (len, cap, cursor) = self.traces[idx].status();
        match self.svc_write_u32s(caller, ptr, &[len, cap, cursor]) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    // ----- interrupt management -----

    fn svc_clear_irqmask(&mut self, caller: u32, hw: u32, ext: u32) -> HcResult {
        if !crate::irq::hw_mask_valid(hw) {
            return ret(XmRet::InvalidParam);
        }
        for level in 1..=15u8 {
            if hw & (1 << level) != 0 {
                self.machine.irqmp.unmask(level);
            }
        }
        self.parts[caller as usize].virq_mask |= ext;
        OK
    }

    fn svc_set_irqmask(&mut self, caller: u32, hw: u32, ext: u32) -> HcResult {
        if !crate::irq::hw_mask_valid(hw) {
            return ret(XmRet::InvalidParam);
        }
        for level in 1..=15u8 {
            if hw & (1 << level) != 0 {
                self.machine.irqmp.mask(level);
            }
        }
        self.parts[caller as usize].virq_mask &= !ext;
        OK
    }

    fn svc_set_irqpend(&mut self, caller: u32, hw: u32, ext: u32) -> HcResult {
        if !crate::irq::hw_mask_valid(hw) {
            return ret(XmRet::InvalidParam);
        }
        for level in 1..=15u8 {
            if hw & (1 << level) != 0 {
                self.machine.irqmp.force(level);
            }
        }
        self.parts[caller as usize].pending_virqs |= ext;
        OK
    }

    fn svc_route_irq(&mut self, irq_type: u32, irq: u32, vector: u32) -> HcResult {
        if irq_type > 1 {
            return ret(XmRet::InvalidParam);
        }
        if vector > 255 {
            return ret(XmRet::InvalidParam);
        }
        let ok = match irq_type {
            0 => self.routes.route_hw(irq, vector as u8),
            _ => self.routes.route_ext(irq, vector as u8),
        };
        if ok {
            OK
        } else {
            ret(XmRet::InvalidParam)
        }
    }

    fn svc_disable_irqs(&mut self, caller: u32) -> HcResult {
        self.sparc[caller as usize].pil = 15;
        OK
    }

    // ----- miscellaneous -----

    /// Legacy-defective: "Test calls with invalid pointers ... did not
    /// return an expected invalid parameter return code. The kernel
    /// instead attempted to execute the hypercall leading to unhandled
    /// data access exceptions. Additionally ... such a service may lead
    /// to breaking the temporal isolation."
    fn svc_multicall(&mut self, caller: u32, start: u32, end: u32) -> (HcResult, u64) {
        if self.flags.multicall_removed {
            return (ret(XmRet::UnknownHypercall), 0);
        }
        if end < start {
            return (ret(XmRet::InvalidParam), 0);
        }
        let entries = (end - start) / 8;
        if !self.flags.multicall_no_pointer_validation {
            // Hypothetical fixed-but-present service (ablation builds).
            if entries > 0
                && self.svc_check(caller, start, entries * 8, 8, AccessKind::Read).is_err()
            {
                return (ret(XmRet::InvalidParam), 0);
            }
        }
        if !self.flags.multicall_unbounded_batch && entries > self.cfg.tuning.multicall_max_entries
        {
            return (ret(XmRet::InvalidParam), 0);
        }
        let cost_per = self.cfg.tuning.multicall_entry_cost_us;
        let mut extra = 0u64;
        for i in 0..entries {
            let addr = start + i * 8;
            // The defective kernel dereferences in supervisor context
            // without validating the caller's rights.
            match self.machine.mem.read_u64(AccessCtx::Kernel, addr) {
                Ok(_word) => {
                    // Batch entries are charged their service cost; their
                    // payload semantics are modelled as no-ops (the
                    // temporal effect is what the experiment measures).
                    extra += cost_per;
                }
                Err(fault) => {
                    let trap = fault.trap();
                    self.machine.record_trap(trap);
                    self.machine.uart.put_fmt(format_args!(
                        "XM: unhandled {trap} while servicing XM_multicall\n"
                    ));
                    self.hm_event(
                        HmEventKind::PartitionTrap {
                            tt: trap.tt(),
                            addr: match trap {
                                leon3_sim::Trap::DataAccessException { addr } => Some(addr),
                                _ => None,
                            },
                        },
                        Some(caller),
                    );
                    let result = if self.partition_status(caller) == Some(PartitionStatus::Halted) {
                        HcResult::NoReturn(NoReturnKind::CallerHalted)
                    } else if self.partition_was_reset_by_hm(caller) {
                        HcResult::NoReturn(NoReturnKind::CallerReset)
                    } else {
                        ret(XmRet::InvalidParam)
                    };
                    return (result, extra);
                }
            }
        }
        if entries > 0 {
            self.ops_push(OpsEvent::MulticallExecuted { by: caller, entries });
        }
        (OK, extra)
    }

    fn svc_flush_cache(&mut self, mask: u32) -> HcResult {
        if mask == 0 {
            return ret(XmRet::NoAction);
        }
        if mask & !0x3 != 0 {
            return ret(XmRet::InvalidParam);
        }
        OK
    }

    fn svc_set_cache_state(&mut self, mask: u32) -> HcResult {
        if mask & !0x3 != 0 {
            return ret(XmRet::InvalidParam);
        }
        self.cache_state = mask;
        OK
    }

    fn svc_get_gid_by_name(&mut self, caller: u32, name_ptr: u32, entity: u32) -> HcResult {
        if entity > 1 {
            return ret(XmRet::InvalidParam);
        }
        let name = match self.svc_read_cstring(caller, name_ptr, 32) {
            Ok(n) => n,
            Err(e) => return ret(e),
        };
        let found = match entity {
            0 => self.cfg.partitions.iter().find(|p| p.name == name).map(|p| p.id),
            _ => self.cfg.channels.iter().position(|c| c.name == name).map(|i| i as u32),
        };
        match found {
            Some(id) => HcResult::Ret(id as i32),
            None => ret(XmRet::InvalidConfig),
        }
    }

    fn svc_write_console(&mut self, caller: u32, ptr: u32, len: i32) -> HcResult {
        if !(0..=1024).contains(&len) {
            return ret(XmRet::InvalidParam);
        }
        if len == 0 {
            return ret(XmRet::NoAction);
        }
        let bytes = match self.svc_read_bytes(caller, ptr, len as u32) {
            Ok(b) => b,
            Err(e) => return ret(e),
        };
        for b in bytes {
            self.machine.uart.put_byte(b);
        }
        OK
    }

    // ----- SPARC V8 specific -----

    fn svc_sparc_atomic(&mut self, caller: u32, addr: u32, operand: u32, op: AtomicOp) -> HcResult {
        if self.svc_check(caller, addr, 4, 4, AccessKind::Write).is_err()
            || self.svc_check(caller, addr, 4, 4, AccessKind::Read).is_err()
        {
            return ret(XmRet::InvalidParam);
        }
        let old = self.machine.mem.read_u32(AccessCtx::Kernel, addr).unwrap_or(0);
        let new = match op {
            AtomicOp::Add => old.wrapping_add(operand),
            AtomicOp::And => old & operand,
            AtomicOp::Or => old | operand,
        };
        let _ = self.machine.mem.write_u32(AccessCtx::Kernel, addr, new);
        HcResult::Ret(old as i32)
    }

    fn svc_sparc_inport(&mut self, caller: u32, port: u32, value_ptr: u32) -> HcResult {
        if port >= 4 {
            return ret(XmRet::InvalidParam);
        }
        let v = self.io_ports[port as usize];
        match self.svc_write_u32s(caller, value_ptr, &[v]) {
            Ok(()) => OK,
            Err(e) => ret(e),
        }
    }

    fn svc_sparc_outport(&mut self, port: u32, value: u32) -> HcResult {
        if port >= 4 {
            return ret(XmRet::InvalidParam);
        }
        self.io_ports[port as usize] = value;
        OK
    }

    fn svc_sparc_set_psr(&mut self, caller: u32, psr: u32) -> HcResult {
        self.sparc[caller as usize].psr = psr & 0x00FF_FFFF;
        OK
    }

    fn svc_sparc_traps(&mut self, caller: u32, enabled: bool) -> HcResult {
        self.sparc[caller as usize].traps_enabled = enabled;
        OK
    }

    fn svc_sparc_set_pil(&mut self, caller: u32, level: u32) -> HcResult {
        if level > 15 {
            return ret(XmRet::InvalidParam);
        }
        self.sparc[caller as usize].pil = level;
        OK
    }

    fn svc_sparc_ackirq(&mut self, irq: u32) -> HcResult {
        if !(1..=15).contains(&irq) {
            return ret(XmRet::InvalidParam);
        }
        self.machine.irqmp.ack(irq as u8);
        OK
    }

    fn svc_sparc_iflush(&mut self, caller: u32, addr: u32, size: u32) -> HcResult {
        if size == 0 {
            return ret(XmRet::NoAction);
        }
        if self.svc_check(caller, addr, size, 1, AccessKind::Read).is_err() {
            return ret(XmRet::InvalidParam);
        }
        OK
    }
}

/// SPARC atomic operation selector.
#[derive(Debug, Clone, Copy)]
enum AtomicOp {
    Add,
    And,
    Or,
}
