//! Vulnerability configuration: the legacy (as-tested) kernel vs. the
//! patched (post-campaign) kernel.
//!
//! The paper's nine findings were genuine XtratuM defects, each of which
//! the XM development team fixed after the campaign:
//!
//! * `XM_reset_system` "has now been revised ... to return
//!   XM_INVALID_PARAM for invalid modes";
//! * "a minimum interval accepted by XM_set_timer has now been defined
//!   ... XM_INVALID_PARAM for interval values under 50µs";
//! * `XM_set_timer` "has now been modified ... to return
//!   XM_INVALID_PARAM for invalid (negative) intervals";
//! * `XM_multicall` "has been temporarily removed".
//!
//! [`VulnFlags`] exposes each defect individually so ablation benches can
//! toggle them; [`KernelBuild`] provides the two named configurations.

/// Fine-grained defect switches. `true` = the defect is present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VulnFlags {
    /// `XM_reset_system` decides cold/warm from `mode & 1` without range
    /// checking (mode 2/16 → cold reset, 0xFFFFFFFF → warm reset).
    pub reset_system_mode_unchecked: bool,
    /// `XM_set_timer` accepts arbitrarily small positive intervals; tiny
    /// intervals re-enter the timer handler recursively (kernel stack
    /// overflow → XM halt on the HW clock, trap storm → simulator crash
    /// on the EXEC clock).
    pub set_timer_no_min_interval: bool,
    /// `XM_set_timer` accepts negative intervals and reports success.
    pub set_timer_negative_interval_accepted: bool,
    /// `XM_multicall` dereferences its pointer arguments without
    /// validation (unhandled data access exceptions).
    pub multicall_no_pointer_validation: bool,
    /// `XM_multicall` executes unbounded batches (temporal isolation
    /// break).
    pub multicall_unbounded_batch: bool,
    /// `XM_multicall` has been removed entirely (the patched mitigation);
    /// when set, the service returns `XM_UNKNOWN_HYPERCALL`.
    pub multicall_removed: bool,
}

impl VulnFlags {
    /// The kernel as it was when the campaign ran: all defects present.
    pub const LEGACY: VulnFlags = VulnFlags {
        reset_system_mode_unchecked: true,
        set_timer_no_min_interval: true,
        set_timer_negative_interval_accepted: true,
        multicall_no_pointer_validation: true,
        multicall_unbounded_batch: true,
        multicall_removed: false,
    };

    /// The kernel with every documented fix applied.
    pub const PATCHED: VulnFlags = VulnFlags {
        reset_system_mode_unchecked: false,
        set_timer_no_min_interval: false,
        set_timer_negative_interval_accepted: false,
        multicall_no_pointer_validation: false,
        multicall_unbounded_batch: false,
        multicall_removed: true,
    };

    /// Number of defect switches currently enabled.
    pub fn enabled_count(&self) -> usize {
        [
            self.reset_system_mode_unchecked,
            self.set_timer_no_min_interval,
            self.set_timer_negative_interval_accepted,
            self.multicall_no_pointer_validation,
            self.multicall_unbounded_batch,
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }
}

/// Named kernel builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBuild {
    /// The defective kernel the paper tested.
    Legacy,
    /// The kernel with the post-campaign fixes.
    Patched,
}

impl KernelBuild {
    /// The defect switches for this build.
    pub fn flags(self) -> VulnFlags {
        match self {
            KernelBuild::Legacy => VulnFlags::LEGACY,
            KernelBuild::Patched => VulnFlags::PATCHED,
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            KernelBuild::Legacy => "XtratuM (legacy, as tested in the campaign)",
            KernelBuild::Patched => "XtratuM (patched, post-campaign fixes)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_has_all_defects() {
        let f = KernelBuild::Legacy.flags();
        assert_eq!(f.enabled_count(), 5);
        assert!(!f.multicall_removed);
    }

    #[test]
    fn patched_has_none() {
        let f = KernelBuild::Patched.flags();
        assert_eq!(f.enabled_count(), 0);
        assert!(f.multicall_removed);
    }

    #[test]
    fn labels_distinct() {
        assert_ne!(KernelBuild::Legacy.label(), KernelBuild::Patched.label());
    }
}
