//! Model-based property tests for kernel subsystems: the queuing channel
//! behaves like a bounded FIFO, the sampling channel like a register, and
//! the HM/trace cursors like checked indices — for arbitrary operation
//! sequences drawn from the deterministic `testkit` harness.

use std::collections::VecDeque;
use testkit::Rng;
use xtratum::config::{ChannelCfg, PortDirection, PortKind};
use xtratum::hm::{HealthMonitor, HmAction, HmEventKind, HmLogEntry};
use xtratum::ipc::{IpcError, PortTable};
use xtratum::trace::{TraceBuffer, TraceRecord};

fn channels() -> Vec<ChannelCfg> {
    vec![
        ChannelCfg {
            name: "q".into(),
            kind: PortKind::Queuing,
            max_msg_size: 8,
            max_msgs: 3,
            source: 0,
            destinations: vec![1],
        },
        ChannelCfg {
            name: "s".into(),
            kind: PortKind::Sampling,
            max_msg_size: 8,
            max_msgs: 0,
            source: 0,
            destinations: vec![1],
        },
    ]
}

#[derive(Debug, Clone)]
enum QOp {
    Send(Vec<u8>),
    Recv(u32),
}

fn arb_qops(rng: &mut Rng) -> Vec<QOp> {
    rng.vec_of(0, 40, |r| {
        if r.chance(1, 2) {
            QOp::Send(r.bytes(0, 10))
        } else {
            QOp::Recv(r.range_u64(0, 12) as u32)
        }
    })
}

/// The queuing channel equals a bounded FIFO reference model.
#[test]
fn queuing_port_is_a_bounded_fifo() {
    testkit::check("queuing_port_is_a_bounded_fifo", 256, |rng| {
        let ops = arb_qops(rng);
        let mut t = PortTable::new(&channels());
        let s =
            t.create_port(0, "q", PortKind::Queuing, 8, Some(3), PortDirection::Source).unwrap();
        let d = t
            .create_port(1, "q", PortKind::Queuing, 8, Some(3), PortDirection::Destination)
            .unwrap();
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();
        for op in ops {
            match op {
                QOp::Send(msg) => {
                    let got = t.send_queuing(0, s, msg.clone());
                    let want = if msg.is_empty() || msg.len() > 8 {
                        Err(IpcError::BadSize)
                    } else if model.len() >= 3 {
                        Err(IpcError::QueueFull)
                    } else {
                        model.push_back(msg);
                        Ok(())
                    };
                    assert_eq!(got, want);
                }
                QOp::Recv(buf) => {
                    let got = t.receive_queuing(1, d, buf);
                    let want = match model.front() {
                        None => Err(IpcError::Empty),
                        Some(m) if (buf as usize) < m.len() => Err(IpcError::BadSize),
                        Some(_) => Ok(model.pop_front().unwrap()),
                    };
                    assert_eq!(got, want);
                }
            }
        }
        // Final fill level agrees.
        let (_, level, _) = t.port_status(0, s).unwrap();
        assert_eq!(level as usize, model.len());
    });
}

/// The sampling channel is last-writer-wins with a monotone sequence
/// counter.
#[test]
fn sampling_port_is_a_register() {
    testkit::check("sampling_port_is_a_register", 256, |rng| {
        let writes = rng.vec_of(1, 20, |r| r.bytes(1, 8));
        let mut t = PortTable::new(&channels());
        let s = t.create_port(0, "s", PortKind::Sampling, 8, None, PortDirection::Source).unwrap();
        let d =
            t.create_port(1, "s", PortKind::Sampling, 8, None, PortDirection::Destination).unwrap();
        for (i, w) in writes.iter().enumerate() {
            t.write_sampling(0, s, w.clone()).unwrap();
            let (msg, seq) = t.read_sampling(1, d, 8).unwrap();
            assert_eq!(&msg, w);
            assert_eq!(seq, i as u64 + 1);
        }
    });
}

/// The HM cursor behaves like a checked index into the log for every
/// seek/read interleaving.
#[test]
fn hm_cursor_is_a_checked_index() {
    testkit::check("hm_cursor_is_a_checked_index", 256, |rng| {
        let n_events = rng.range(0, 10);
        let ops = rng
            .vec_of(0, 25, |r| (r.range_i64(-128, 128), r.range_u64(0, 4) as u32, r.range(1, 4)));
        let mut hm = HealthMonitor::new(64);
        for i in 0..n_events {
            hm.record(HmLogEntry {
                time: i as u64,
                kind: HmEventKind::PartitionRaised { code: i as u32 },
                partition: Some(0),
                action: HmAction::Log,
            });
        }
        let mut cursor = 0i64;
        let len = n_events as i64;
        for (off, whence, count) in ops {
            if whence <= 2 {
                let base = match whence {
                    0 => 0,
                    1 => cursor,
                    _ => len,
                };
                let target = base + off;
                let got = hm.seek(off, whence);
                if (0..=len).contains(&target) {
                    assert_eq!(got, Some(target as usize));
                    cursor = target;
                } else {
                    assert_eq!(got, None);
                }
            } else {
                assert_eq!(hm.seek(off, whence), None);
            }
            let read = hm.read(count);
            let expect = (len - cursor).min(count as i64).max(0);
            assert_eq!(read.len() as i64, expect);
            // reads return the events at the cursor, in order
            for (j, e) in read.iter().enumerate() {
                assert_eq!(e.time, (cursor + j as i64) as u64);
            }
            cursor += expect;
        }
    });
}

/// The trace buffer keeps the oldest `capacity` records and counts
/// the rest as dropped.
#[test]
fn trace_buffer_retention() {
    testkit::check("trace_buffer_retention", 256, |rng| {
        let cap = rng.range(1, 8);
        let n = rng.range(0, 20);
        let mut b = TraceBuffer::new(cap);
        for i in 0..n {
            b.emit(TraceRecord { time: i as u64, partition: 0, bitmask: 1, payload: i as u32 });
        }
        assert_eq!(b.len(), n.min(cap));
        assert_eq!(b.dropped as usize, n.saturating_sub(cap));
        let mut seen = 0;
        while let Some(r) = b.read() {
            assert_eq!(r.payload as usize, seen);
            seen += 1;
        }
        assert_eq!(seen, n.min(cap));
    });
}
