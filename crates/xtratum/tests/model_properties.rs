//! Model-based property tests for kernel subsystems: the queuing channel
//! behaves like a bounded FIFO, the sampling channel like a register, and
//! the HM/trace cursors like checked indices — for arbitrary operation
//! sequences.

use proptest::prelude::*;
use std::collections::VecDeque;
use xtratum::config::{ChannelCfg, PortDirection, PortKind};
use xtratum::hm::{HealthMonitor, HmAction, HmEventKind, HmLogEntry};
use xtratum::ipc::{IpcError, PortTable};
use xtratum::trace::{TraceBuffer, TraceRecord};

fn channels() -> Vec<ChannelCfg> {
    vec![
        ChannelCfg {
            name: "q".into(),
            kind: PortKind::Queuing,
            max_msg_size: 8,
            max_msgs: 3,
            source: 0,
            destinations: vec![1],
        },
        ChannelCfg {
            name: "s".into(),
            kind: PortKind::Sampling,
            max_msg_size: 8,
            max_msgs: 0,
            source: 0,
            destinations: vec![1],
        },
    ]
}

#[derive(Debug, Clone)]
enum QOp {
    Send(Vec<u8>),
    Recv(u32),
}

fn arb_qops() -> impl Strategy<Value = Vec<QOp>> {
    proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..10).prop_map(QOp::Send),
            (0u32..12).prop_map(QOp::Recv),
        ],
        0..40,
    )
}

proptest! {
    /// The queuing channel equals a bounded FIFO reference model.
    #[test]
    fn queuing_port_is_a_bounded_fifo(ops in arb_qops()) {
        let mut t = PortTable::new(&channels());
        let s = t.create_port(0, "q", PortKind::Queuing, 8, Some(3), PortDirection::Source).unwrap();
        let d = t.create_port(1, "q", PortKind::Queuing, 8, Some(3), PortDirection::Destination).unwrap();
        let mut model: VecDeque<Vec<u8>> = VecDeque::new();
        for op in ops {
            match op {
                QOp::Send(msg) => {
                    let got = t.send_queuing(0, s, msg.clone());
                    let want = if msg.is_empty() || msg.len() > 8 {
                        Err(IpcError::BadSize)
                    } else if model.len() >= 3 {
                        Err(IpcError::QueueFull)
                    } else {
                        model.push_back(msg);
                        Ok(())
                    };
                    prop_assert_eq!(got, want);
                }
                QOp::Recv(buf) => {
                    let got = t.receive_queuing(1, d, buf);
                    let want = match model.front() {
                        None => Err(IpcError::Empty),
                        Some(m) if (buf as usize) < m.len() => Err(IpcError::BadSize),
                        Some(_) => Ok(model.pop_front().unwrap()),
                    };
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final fill level agrees.
        let (_, level, _) = t.port_status(0, s).unwrap();
        prop_assert_eq!(level as usize, model.len());
    }

    /// The sampling channel is last-writer-wins with a monotone sequence
    /// counter.
    #[test]
    fn sampling_port_is_a_register(writes in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..8), 1..20
    )) {
        let mut t = PortTable::new(&channels());
        let s = t.create_port(0, "s", PortKind::Sampling, 8, None, PortDirection::Source).unwrap();
        let d = t.create_port(1, "s", PortKind::Sampling, 8, None, PortDirection::Destination).unwrap();
        for (i, w) in writes.iter().enumerate() {
            t.write_sampling(0, s, w.clone()).unwrap();
            let (msg, seq) = t.read_sampling(1, d, 8).unwrap();
            prop_assert_eq!(&msg, w);
            prop_assert_eq!(seq, i as u64 + 1);
        }
    }

    /// The HM cursor behaves like a checked index into the log for every
    /// seek/read interleaving.
    #[test]
    fn hm_cursor_is_a_checked_index(
        n_events in 0usize..10,
        ops in proptest::collection::vec((any::<i8>(), 0u32..4, 1usize..4), 0..25)
    ) {
        let mut hm = HealthMonitor::new(64);
        for i in 0..n_events {
            hm.record(HmLogEntry {
                time: i as u64,
                kind: HmEventKind::PartitionRaised { code: i as u32 },
                partition: Some(0),
                action: HmAction::Log,
            });
        }
        let mut cursor = 0i64;
        let len = n_events as i64;
        for (off, whence, count) in ops {
            let off = off as i64;
            if whence <= 2 {
                let base = match whence { 0 => 0, 1 => cursor, _ => len };
                let target = base + off;
                let got = hm.seek(off, whence);
                if (0..=len).contains(&target) {
                    prop_assert_eq!(got, Some(target as usize));
                    cursor = target;
                } else {
                    prop_assert_eq!(got, None);
                }
            } else {
                prop_assert_eq!(hm.seek(off, whence), None);
            }
            let read = hm.read(count);
            let expect = (len - cursor).min(count as i64).max(0);
            prop_assert_eq!(read.len() as i64, expect);
            // reads return the events at the cursor, in order
            for (j, e) in read.iter().enumerate() {
                prop_assert_eq!(e.time, (cursor + j as i64) as u64);
            }
            cursor += expect;
        }
    }

    /// The trace buffer keeps the oldest `capacity` records and counts
    /// the rest as dropped.
    #[test]
    fn trace_buffer_retention(cap in 1usize..8, n in 0usize..20) {
        let mut b = TraceBuffer::new(cap);
        for i in 0..n {
            b.emit(TraceRecord { time: i as u64, partition: 0, bitmask: 1, payload: i as u32 });
        }
        prop_assert_eq!(b.len(), n.min(cap));
        prop_assert_eq!(b.dropped as usize, n.saturating_sub(cap));
        let mut seen = 0;
        while let Some(r) = b.read() {
            prop_assert_eq!(r.payload as usize, seen);
            seen += 1;
        }
        prop_assert_eq!(seen, n.min(cap));
    }
}
