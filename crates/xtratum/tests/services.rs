//! Per-service behavioural tests: every one of the 61 hypercalls,
//! happy path and error paths, on a two-plan / three-partition system.
//!
//! Partition 0 ("SYS") is a system partition; partition 1 ("APP") and
//! partition 2 ("AUX") are normal. One sampling channel ("samp",
//! APP → SYS) and one queuing channel ("queue", SYS → APP) are configured.

use leon3_sim::addrspace::{AccessCtx, Perms};
use xtratum::config::{ChannelCfg, MemAreaCfg, PartitionCfg, PlanCfg, PortKind, SlotCfg, XmConfig};
use xtratum::hypercall::{HypercallId as H, RawHypercall};
use xtratum::kernel::{HcResult, NoReturnKind, XmKernel};
use xtratum::partition::PartitionStatus;
use xtratum::retcode::XmRet;
use xtratum::vuln::KernelBuild;

const SYS: u32 = 0;
const APP: u32 = 1;
const SYS_BASE: u32 = 0x4010_0000;
const APP_BASE: u32 = 0x4020_0000;
const SIZE: u32 = 0x1_0000;
const SCRATCH: u32 = SYS_BASE + 0x8000;
const NAME_SAMP: u32 = SYS_BASE + 0x9000;
const NAME_QUEUE: u32 = SYS_BASE + 0x9010;

fn config() -> XmConfig {
    XmConfig {
        partitions: vec![
            PartitionCfg {
                id: 0,
                name: "SYS".into(),
                system: true,
                mem: vec![MemAreaCfg { base: SYS_BASE, size: SIZE, perms: Perms::RWX }],
            },
            PartitionCfg {
                id: 1,
                name: "APP".into(),
                system: false,
                mem: vec![MemAreaCfg { base: APP_BASE, size: SIZE, perms: Perms::RWX }],
            },
            PartitionCfg {
                id: 2,
                name: "AUX".into(),
                system: false,
                mem: vec![MemAreaCfg { base: 0x4030_0000, size: SIZE, perms: Perms::RWX }],
            },
        ],
        plans: vec![
            PlanCfg {
                id: 0,
                major_frame_us: 120_000,
                slots: vec![
                    SlotCfg { partition: 0, start_us: 0, duration_us: 40_000 },
                    SlotCfg { partition: 1, start_us: 40_000, duration_us: 40_000 },
                    SlotCfg { partition: 2, start_us: 80_000, duration_us: 40_000 },
                ],
            },
            PlanCfg {
                id: 1,
                major_frame_us: 120_000,
                slots: vec![SlotCfg { partition: 0, start_us: 0, duration_us: 120_000 }],
            },
        ],
        channels: vec![
            ChannelCfg {
                name: "samp".into(),
                kind: PortKind::Sampling,
                max_msg_size: 16,
                max_msgs: 0,
                source: APP,
                destinations: vec![SYS],
            },
            ChannelCfg {
                name: "queue".into(),
                kind: PortKind::Queuing,
                max_msg_size: 32,
                max_msgs: 2,
                source: SYS,
                destinations: vec![APP],
            },
        ],
        hm_table: XmConfig::default_hm_table(),
        tuning: Default::default(),
    }
}

/// Boots and writes the channel-name strings into SYS memory.
fn kernel(build: KernelBuild) -> XmKernel {
    let mut k = XmKernel::boot(config(), build).unwrap();
    k.machine.mem.write_bytes(AccessCtx::Kernel, NAME_SAMP, b"samp\0").unwrap();
    k.machine.mem.write_bytes(AccessCtx::Kernel, NAME_QUEUE, b"queue\0").unwrap();
    k
}

fn call(k: &mut XmKernel, caller: u32, id: H, args: Vec<u64>) -> HcResult {
    k.hypercall(caller, &RawHypercall::new_unchecked(id, args)).result
}

fn ret(code: XmRet) -> HcResult {
    HcResult::Ret(code.code())
}

const OK: HcResult = HcResult::Ret(0);

// --- system management -------------------------------------------------------

#[test]
fn halt_system_halts() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(
        call(&mut k, SYS, H::HaltSystem, vec![]),
        HcResult::NoReturn(NoReturnKind::SystemHalt)
    );
    assert!(!k.alive());
    assert!(k.halt_reason().unwrap().contains("halt_system"));
}

#[test]
fn get_system_status_writes_counters() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::GetSystemStatus, vec![SCRATCH as u64]), OK);
    // cold/warm resets are zero at boot
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 0);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 4).unwrap(), 0);
    // bad pointers rejected
    assert_eq!(call(&mut k, SYS, H::GetSystemStatus, vec![0]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::GetSystemStatus, vec![2]), ret(XmRet::InvalidParam));
}

// --- partition management ----------------------------------------------------

#[test]
fn partition_lifecycle_services() {
    let mut k = kernel(KernelBuild::Legacy);
    // suspend + resume another partition
    assert_eq!(call(&mut k, SYS, H::SuspendPartition, vec![APP as u64]), OK);
    assert_eq!(k.partition_status(APP), Some(PartitionStatus::Suspended));
    assert_eq!(call(&mut k, SYS, H::SuspendPartition, vec![APP as u64]), ret(XmRet::NoAction));
    assert_eq!(call(&mut k, SYS, H::ResumePartition, vec![APP as u64]), OK);
    assert_eq!(call(&mut k, SYS, H::ResumePartition, vec![APP as u64]), ret(XmRet::NoAction));
    // halt + operations on a halted partition
    assert_eq!(call(&mut k, SYS, H::HaltPartition, vec![APP as u64]), OK);
    assert_eq!(call(&mut k, SYS, H::HaltPartition, vec![APP as u64]), ret(XmRet::NoAction));
    assert_eq!(call(&mut k, SYS, H::SuspendPartition, vec![APP as u64]), ret(XmRet::InvalidMode));
    assert_eq!(call(&mut k, SYS, H::ResumePartition, vec![APP as u64]), ret(XmRet::InvalidMode));
    assert_eq!(call(&mut k, SYS, H::ShutdownPartition, vec![APP as u64]), ret(XmRet::InvalidMode));
    // reset revives it
    assert_eq!(call(&mut k, SYS, H::ResetPartition, vec![APP as u64, 0, 0x55]), OK);
    assert_eq!(k.partition_status(APP), Some(PartitionStatus::Ready));
}

#[test]
fn shutdown_delivers_virq_and_unschedules() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::ShutdownPartition, vec![2]), OK);
    assert_eq!(k.partition_status(2), Some(PartitionStatus::Shutdown));
}

#[test]
fn get_partition_status_permissions() {
    let mut k = kernel(KernelBuild::Legacy);
    // SYS may query anyone.
    assert_eq!(call(&mut k, SYS, H::GetPartitionStatus, vec![2, SCRATCH as u64]), OK);
    // first status word encodes READY (= 1)
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 1);
    // APP may query itself...
    assert_eq!(
        call(&mut k, APP, H::GetPartitionStatus, vec![APP as u64, (APP_BASE + 0x100) as u64]),
        OK
    );
    // ... but not others.
    assert_eq!(
        call(&mut k, APP, H::GetPartitionStatus, vec![0, (APP_BASE + 0x100) as u64]),
        ret(XmRet::PermError)
    );
    // invalid ids
    assert_eq!(
        call(&mut k, SYS, H::GetPartitionStatus, vec![(-1i64) as u64, SCRATCH as u64]),
        ret(XmRet::InvalidParam)
    );
}

#[test]
fn set_partition_opmode_validates() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::SetPartitionOpMode, vec![3]), OK);
    assert_eq!(call(&mut k, APP, H::SetPartitionOpMode, vec![4]), ret(XmRet::InvalidParam));
    assert_eq!(
        call(&mut k, APP, H::SetPartitionOpMode, vec![(-1i64) as u64]),
        ret(XmRet::InvalidParam)
    );
}

#[test]
fn self_services_do_not_return() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(
        call(&mut k, APP, H::IdleSelf, vec![]),
        HcResult::NoReturn(NoReturnKind::CallerIdled)
    );
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(
        call(&mut k, APP, H::SuspendSelf, vec![]),
        HcResult::NoReturn(NoReturnKind::CallerSuspended)
    );
    assert_eq!(k.partition_status(APP), Some(PartitionStatus::Suspended));
}

#[test]
fn params_get_pct_marks_query() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::ParamsGetPct, vec![]), OK);
}

// --- time management -----------------------------------------------------------

#[test]
fn get_time_clocks() {
    let mut k = kernel(KernelBuild::Legacy);
    k.machine.advance(1234);
    assert_eq!(call(&mut k, SYS, H::GetTime, vec![0, SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u64(AccessCtx::Kernel, SCRATCH).unwrap(), 1234);
    // exec clock is per-partition accumulated time — zero here because
    // execution time is charged by the partition API, not by direct
    // dispatcher calls.
    assert_eq!(call(&mut k, SYS, H::GetTime, vec![1, SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u64(AccessCtx::Kernel, SCRATCH).unwrap(), 0);
    // misaligned pointer
    assert_eq!(
        call(&mut k, SYS, H::GetTime, vec![0, (SCRATCH + 4) as u64]),
        ret(XmRet::InvalidParam)
    );
    // bad clock
    assert_eq!(call(&mut k, SYS, H::GetTime, vec![2, SCRATCH as u64]), ret(XmRet::InvalidParam));
}

#[test]
fn set_timer_arms_hw_clock_vtimer() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::SetTimer, vec![0, 5_000, 1_000]), OK);
    let t = k.hw_vtimer(APP).unwrap();
    assert!(t.armed);
    assert_eq!(t.next_expiry, 5_000);
    assert_eq!(t.interval, 1_000);
    // negative absolute time is always invalid
    assert_eq!(
        call(&mut k, APP, H::SetTimer, vec![0, (-5i64) as u64, 1_000]),
        ret(XmRet::InvalidParam)
    );
}

// --- plan management -------------------------------------------------------------

#[test]
fn plan_services() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::GetPlanStatus, vec![SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 0); // plan 0
    assert_eq!(call(&mut k, SYS, H::SwitchSchedPlan, vec![1, SCRATCH as u64]), OK);
    assert_eq!(call(&mut k, SYS, H::GetPlanStatus, vec![SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 4).unwrap(), 2); // pending = 1 (+1)
    assert_eq!(
        call(&mut k, SYS, H::SwitchSchedPlan, vec![9, SCRATCH as u64]),
        ret(XmRet::InvalidParam)
    );
    // normal partitions may not switch plans
    assert_eq!(
        call(&mut k, APP, H::SwitchSchedPlan, vec![1, (APP_BASE + 0x100) as u64]),
        ret(XmRet::PermError)
    );
}

// --- IPC --------------------------------------------------------------------------

#[test]
fn sampling_channel_end_to_end() {
    let mut k = kernel(KernelBuild::Legacy);
    // APP writes its name into its own memory and creates the source port.
    k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x10, b"samp\0").unwrap();
    let src = call(&mut k, APP, H::CreateSamplingPort, vec![(APP_BASE + 0x10) as u64, 16, 0]);
    assert_eq!(src, HcResult::Ret(0));
    let dst = call(&mut k, SYS, H::CreateSamplingPort, vec![NAME_SAMP as u64, 16, 1]);
    assert_eq!(dst, HcResult::Ret(0));
    // duplicate creation: no action
    assert_eq!(
        call(&mut k, SYS, H::CreateSamplingPort, vec![NAME_SAMP as u64, 16, 1]),
        ret(XmRet::NoAction)
    );
    // wrong geometry / direction / name
    assert_eq!(
        call(&mut k, SYS, H::CreateSamplingPort, vec![NAME_SAMP as u64, 8, 1]),
        ret(XmRet::InvalidConfig)
    );
    assert_eq!(
        call(&mut k, SYS, H::CreateSamplingPort, vec![NAME_SAMP as u64, 16, 0]),
        ret(XmRet::OpNotAllowed)
    );
    assert_eq!(
        call(&mut k, SYS, H::CreateSamplingPort, vec![NAME_SAMP as u64, 16, 7]),
        ret(XmRet::InvalidParam)
    );
    // reading before any write: not available
    assert_eq!(
        call(
            &mut k,
            SYS,
            H::ReadSamplingMessage,
            vec![0, SCRATCH as u64, 16, (SCRATCH + 32) as u64]
        ),
        ret(XmRet::NotAvailable)
    );
    // APP writes a message, SYS reads it back
    k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x40, b"attitude-quatern").unwrap();
    assert_eq!(
        call(&mut k, APP, H::WriteSamplingMessage, vec![0, (APP_BASE + 0x40) as u64, 16]),
        OK
    );
    assert_eq!(
        call(
            &mut k,
            SYS,
            H::ReadSamplingMessage,
            vec![0, SCRATCH as u64, 16, (SCRATCH + 32) as u64]
        ),
        OK
    );
    let got = k.machine.mem.read_bytes(AccessCtx::Kernel, SCRATCH, 16).unwrap();
    assert_eq!(&got, b"attitude-quatern");
    // freshness counter delivered through the flags pointer
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 32).unwrap(), 1);
    // port status reports a valid sample
    assert_eq!(call(&mut k, SYS, H::GetSamplingPortStatus, vec![0, (SCRATCH + 64) as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 64).unwrap(), 1);
}

#[test]
fn queuing_channel_end_to_end() {
    let mut k = kernel(KernelBuild::Legacy);
    let src = call(&mut k, SYS, H::CreateQueuingPort, vec![NAME_QUEUE as u64, 2, 32, 0]);
    assert_eq!(src, HcResult::Ret(0));
    k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x10, b"queue\0").unwrap();
    let dst = call(&mut k, APP, H::CreateQueuingPort, vec![(APP_BASE + 0x10) as u64, 2, 32, 1]);
    assert_eq!(dst, HcResult::Ret(0));
    // wrong depth is an invalid config
    assert_eq!(
        call(&mut k, SYS, H::CreateQueuingPort, vec![NAME_QUEUE as u64, 4, 32, 0]),
        ret(XmRet::InvalidConfig)
    );
    // send twice, third hits backpressure
    k.machine
        .mem
        .write_bytes(AccessCtx::Kernel, SCRATCH, b"telemetry-frame-0000000000000000")
        .unwrap();
    assert_eq!(call(&mut k, SYS, H::SendQueuingMessage, vec![0, SCRATCH as u64, 32]), OK);
    assert_eq!(call(&mut k, SYS, H::SendQueuingMessage, vec![0, SCRATCH as u64, 32]), OK);
    assert_eq!(
        call(&mut k, SYS, H::SendQueuingMessage, vec![0, SCRATCH as u64, 32]),
        ret(XmRet::NotAvailable)
    );
    // receive drains FIFO and reports the length
    assert_eq!(
        call(
            &mut k,
            APP,
            H::ReceiveQueuingMessage,
            vec![0, (APP_BASE + 0x100) as u64, 32, (APP_BASE + 0x80) as u64]
        ),
        OK
    );
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, APP_BASE + 0x80).unwrap(), 32);
    // queue status on the wrong port kind is an invalid parameter
    assert_eq!(
        call(&mut k, SYS, H::GetSamplingPortStatus, vec![0, SCRATCH as u64]),
        ret(XmRet::InvalidParam)
    );
    assert_eq!(call(&mut k, SYS, H::GetQueuingPortStatus, vec![0, SCRATCH as u64]), OK);
    // flush
    assert_eq!(call(&mut k, SYS, H::FlushPort, vec![0]), OK);
    assert_eq!(call(&mut k, SYS, H::FlushPort, vec![9]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::FlushAllPorts, vec![]), OK);
}

/// Creates the sampling channel's source (APP) and destination (SYS)
/// ports for the staging tests below.
fn create_samp_ports(k: &mut XmKernel) {
    k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x10, b"samp\0").unwrap();
    assert_eq!(
        call(k, APP, H::CreateSamplingPort, vec![(APP_BASE + 0x10) as u64, 16, 0]),
        HcResult::Ret(0)
    );
    assert_eq!(
        call(k, SYS, H::CreateSamplingPort, vec![NAME_SAMP as u64, 16, 1]),
        HcResult::Ret(0)
    );
}

/// Sampling writes are staged per channel and landed at the next
/// observation point; a burst of writes must be indistinguishable from
/// the old eager path — the reader sees the *last* value and a
/// freshness counter advanced once per write, not once per commit.
#[test]
fn sampling_write_burst_reads_last_value_with_full_seq() {
    let mut k = kernel(KernelBuild::Legacy);
    create_samp_ports(&mut k);
    for msg in [b"att-aaaaaaaaaaaa", b"att-bbbbbbbbbbbb", b"att-cccccccccccc"] {
        k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x40, msg).unwrap();
        assert_eq!(
            call(&mut k, APP, H::WriteSamplingMessage, vec![0, (APP_BASE + 0x40) as u64, 16]),
            OK
        );
    }
    assert_eq!(
        call(
            &mut k,
            SYS,
            H::ReadSamplingMessage,
            vec![0, SCRATCH as u64, 16, (SCRATCH + 32) as u64]
        ),
        OK
    );
    let got = k.machine.mem.read_bytes(AccessCtx::Kernel, SCRATCH, 16).unwrap();
    assert_eq!(&got, b"att-cccccccccccc");
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 32).unwrap(), 3);
}

/// Port status is an observation point too: a staged write must be
/// visible as a valid sample before any read happens.
#[test]
fn port_status_observes_staged_sampling_write() {
    let mut k = kernel(KernelBuild::Legacy);
    create_samp_ports(&mut k);
    k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x40, b"gyro-rates-xyz!!").unwrap();
    assert_eq!(
        call(&mut k, APP, H::WriteSamplingMessage, vec![0, (APP_BASE + 0x40) as u64, 16]),
        OK
    );
    assert_eq!(call(&mut k, SYS, H::GetSamplingPortStatus, vec![0, (SCRATCH + 64) as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 64).unwrap(), 1);
}

/// Rejected writes stage nothing: validation runs at call time (the
/// error is returned immediately, as the eager path did) and the port
/// still has no sample afterwards.
#[test]
fn rejected_sampling_write_stages_nothing() {
    let mut k = kernel(KernelBuild::Legacy);
    create_samp_ports(&mut k);
    // oversize and zero-length writes fail the geometry check
    assert_eq!(
        call(&mut k, APP, H::WriteSamplingMessage, vec![0, (APP_BASE + 0x40) as u64, 17]),
        ret(XmRet::InvalidParam)
    );
    assert_eq!(
        call(&mut k, APP, H::WriteSamplingMessage, vec![0, (APP_BASE + 0x40) as u64, 0]),
        ret(XmRet::InvalidParam)
    );
    // reading from the wrong end fails before it could observe anything
    assert_eq!(
        call(
            &mut k,
            APP,
            H::ReadSamplingMessage,
            vec![0, (APP_BASE + 0x40) as u64, 16, (APP_BASE + 0x60) as u64]
        ),
        ret(XmRet::OpNotAllowed)
    );
    assert_eq!(
        call(
            &mut k,
            SYS,
            H::ReadSamplingMessage,
            vec![0, SCRATCH as u64, 16, (SCRATCH + 32) as u64]
        ),
        ret(XmRet::NotAvailable)
    );
}

/// A cold reset between write and read drops the staged sample exactly
/// like the eager path (where the reset wipes the landed sample): after
/// recreating the ports, the channel reads back empty.
#[test]
fn cold_reset_drops_staged_sampling_write() {
    let mut k = kernel(KernelBuild::Legacy);
    create_samp_ports(&mut k);
    k.machine.mem.write_bytes(AccessCtx::Kernel, APP_BASE + 0x40, b"doomed-sample!!!").unwrap();
    assert_eq!(
        call(&mut k, APP, H::WriteSamplingMessage, vec![0, (APP_BASE + 0x40) as u64, 16]),
        OK
    );
    assert_eq!(
        call(&mut k, SYS, H::ResetSystem, vec![0]),
        HcResult::NoReturn(NoReturnKind::SystemColdReset)
    );
    // ports died with the reset; recreate and observe an empty channel
    k.machine.mem.write_bytes(AccessCtx::Kernel, NAME_SAMP, b"samp\0").unwrap();
    create_samp_ports(&mut k);
    assert_eq!(
        call(
            &mut k,
            SYS,
            H::ReadSamplingMessage,
            vec![0, SCRATCH as u64, 16, (SCRATCH + 32) as u64]
        ),
        ret(XmRet::NotAvailable)
    );
}

// --- memory management --------------------------------------------------------------

#[test]
fn memory_copy_and_update_page() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::UpdatePage32, vec![SCRATCH as u64, 0xCAFE_F00D]), OK);
    assert_eq!(
        call(&mut k, SYS, H::MemoryCopy, vec![(SCRATCH + 64) as u64, SCRATCH as u64, 4]),
        OK
    );
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 64).unwrap(), 0xCAFE_F00D);
    // cross-partition copies are denied in both directions
    assert_eq!(
        call(&mut k, SYS, H::MemoryCopy, vec![APP_BASE as u64, SCRATCH as u64, 4]),
        ret(XmRet::InvalidParam)
    );
    assert_eq!(
        call(&mut k, SYS, H::MemoryCopy, vec![SCRATCH as u64, APP_BASE as u64, 4]),
        ret(XmRet::InvalidParam)
    );
    // unaligned page update
    assert_eq!(
        call(&mut k, SYS, H::UpdatePage32, vec![(SCRATCH + 2) as u64, 1]),
        ret(XmRet::InvalidParam)
    );
}

// --- health monitor -------------------------------------------------------------------

#[test]
fn hm_services_round_trip() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::HmOpen, vec![]), OK);
    assert_eq!(call(&mut k, SYS, H::HmOpen, vec![]), ret(XmRet::NoAction));
    // raise two events, read them back
    assert_eq!(call(&mut k, APP, H::HmRaiseEvent, vec![0xA1]), OK);
    assert_eq!(call(&mut k, APP, H::HmRaiseEvent, vec![0xA2]), OK);
    assert_eq!(call(&mut k, SYS, H::HmRead, vec![SCRATCH as u64, 10]), HcResult::Ret(2));
    // class code 4 = partition-raised; partition field is id+1
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 8).unwrap(), 4);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 12).unwrap(), APP + 1);
    // cursor reached the end
    assert_eq!(call(&mut k, SYS, H::HmRead, vec![SCRATCH as u64, 10]), HcResult::Ret(0));
    // seek back and re-read
    assert_eq!(call(&mut k, SYS, H::HmSeek, vec![0, 0]), OK);
    assert_eq!(call(&mut k, SYS, H::HmRead, vec![SCRATCH as u64, 1]), HcResult::Ret(1));
    assert_eq!(call(&mut k, SYS, H::HmSeek, vec![9, 0]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::HmSeek, vec![0, 7]), ret(XmRet::InvalidParam));
    // status
    assert_eq!(call(&mut k, SYS, H::HmStatus, vec![SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 2); // entries
                                                                                // HM access is privileged
    assert_eq!(
        call(&mut k, APP, H::HmRead, vec![(APP_BASE as u64) + 0x100, 1]),
        ret(XmRet::PermError)
    );
}

// --- trace ---------------------------------------------------------------------------

#[test]
fn trace_services_round_trip() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::TraceOpen, vec![APP as u64]), HcResult::Ret(1));
    // normal partitions cannot open foreign streams; system can.
    assert_eq!(call(&mut k, APP, H::TraceOpen, vec![0]), ret(XmRet::PermError));
    assert_eq!(call(&mut k, SYS, H::TraceOpen, vec![APP as u64]), HcResult::Ret(1));
    // emit an event from APP
    k.machine.mem.write_u32(AccessCtx::Kernel, APP_BASE + 0x20, 0x7777).unwrap();
    assert_eq!(call(&mut k, APP, H::TraceEvent, vec![1, (APP_BASE + 0x20) as u64]), OK);
    assert_eq!(
        call(&mut k, APP, H::TraceEvent, vec![0, (APP_BASE + 0x20) as u64]),
        ret(XmRet::NoAction)
    );
    // SYS reads APP's stream
    assert_eq!(call(&mut k, SYS, H::TraceRead, vec![APP as u64, SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 12).unwrap(), 0x7777);
    assert_eq!(
        call(&mut k, SYS, H::TraceRead, vec![APP as u64, SCRATCH as u64]),
        ret(XmRet::NotAvailable)
    );
    // seek back
    assert_eq!(call(&mut k, SYS, H::TraceSeek, vec![APP as u64, 0, 0]), OK);
    assert_eq!(call(&mut k, SYS, H::TraceRead, vec![APP as u64, SCRATCH as u64]), OK);
    // status: one record, cursor at 1
    assert_eq!(call(&mut k, SYS, H::TraceStatus, vec![APP as u64, SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 1);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH + 8).unwrap(), 1);
    // bad whence / range
    assert_eq!(call(&mut k, SYS, H::TraceSeek, vec![APP as u64, 0, 3]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::TraceSeek, vec![APP as u64, 5, 0]), ret(XmRet::InvalidParam));
}

// --- interrupts ------------------------------------------------------------------------

#[test]
fn irq_mask_services_validate_reserved_bits() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::ClearIrqMask, vec![0x00C0, 0xF]), OK);
    assert_eq!(call(&mut k, APP, H::SetIrqMask, vec![0x00C0, 0xF]), OK);
    for bad in [1u64, 0x10000, 0xFFFF_FFFF] {
        assert_eq!(call(&mut k, APP, H::ClearIrqMask, vec![bad, 0]), ret(XmRet::InvalidParam));
        assert_eq!(call(&mut k, APP, H::SetIrqMask, vec![bad, 0]), ret(XmRet::InvalidParam));
        assert_eq!(call(&mut k, SYS, H::SetIrqPend, vec![bad, 0]), ret(XmRet::InvalidParam));
    }
    assert_eq!(call(&mut k, SYS, H::SetIrqPend, vec![0x0100, 2]), OK);
    assert!(k.machine.irqmp.is_pending(8));
    // pend is privileged
    assert_eq!(call(&mut k, APP, H::SetIrqPend, vec![0x0100, 0]), ret(XmRet::PermError));
}

#[test]
fn route_irq_validates_in_order() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![0, 8, 0x42]), OK);
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![1, 31, 0xE9]), OK);
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![2, 8, 0x42]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![0, 8, 256]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![0, 0, 1]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![0, 16, 1]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, SYS, H::RouteIrq, vec![1, 32, 1]), ret(XmRet::InvalidParam));
}

#[test]
fn disable_irqs_masks_everything() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::DisableIrqs, vec![]), OK);
}

// --- miscellaneous ------------------------------------------------------------------------

#[test]
fn flush_cache_and_cache_state() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::FlushCache, vec![0]), ret(XmRet::NoAction));
    for m in [1u64, 2, 3] {
        assert_eq!(call(&mut k, APP, H::FlushCache, vec![m]), OK);
        assert_eq!(call(&mut k, APP, H::SetCacheState, vec![m]), OK);
    }
    assert_eq!(call(&mut k, APP, H::FlushCache, vec![16]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, APP, H::SetCacheState, vec![0xFFFF_FFFF]), ret(XmRet::InvalidParam));
}

#[test]
fn get_gid_by_name_looks_up_partitions_and_channels() {
    let mut k = kernel(KernelBuild::Legacy);
    k.machine.mem.write_bytes(AccessCtx::Kernel, SCRATCH, b"APP\0").unwrap();
    assert_eq!(call(&mut k, SYS, H::GetGidByName, vec![SCRATCH as u64, 0]), HcResult::Ret(1));
    k.machine.mem.write_bytes(AccessCtx::Kernel, SCRATCH, b"queue\0").unwrap();
    assert_eq!(call(&mut k, SYS, H::GetGidByName, vec![SCRATCH as u64, 1]), HcResult::Ret(1));
    k.machine.mem.write_bytes(AccessCtx::Kernel, SCRATCH, b"nope\0").unwrap();
    assert_eq!(
        call(&mut k, SYS, H::GetGidByName, vec![SCRATCH as u64, 0]),
        ret(XmRet::InvalidConfig)
    );
    assert_eq!(
        call(&mut k, SYS, H::GetGidByName, vec![SCRATCH as u64, 2]),
        ret(XmRet::InvalidParam)
    );
    assert_eq!(call(&mut k, SYS, H::GetGidByName, vec![0, 0]), ret(XmRet::InvalidParam));
    // unterminated name: fill 32 bytes without a NUL
    k.machine.mem.write_bytes(AccessCtx::Kernel, SCRATCH, &[b'x'; 32]).unwrap();
    assert_eq!(
        call(&mut k, SYS, H::GetGidByName, vec![SCRATCH as u64, 0]),
        ret(XmRet::InvalidParam)
    );
}

#[test]
fn write_console_goes_to_uart() {
    let mut k = kernel(KernelBuild::Legacy);
    k.machine.mem.write_bytes(AccessCtx::Kernel, SCRATCH, b"FDIR alive\n").unwrap();
    assert_eq!(call(&mut k, SYS, H::WriteConsole, vec![SCRATCH as u64, 11]), OK);
    assert!(k.machine.uart.captured().contains("FDIR alive"));
    assert_eq!(call(&mut k, SYS, H::WriteConsole, vec![SCRATCH as u64, 0]), ret(XmRet::NoAction));
    assert_eq!(
        call(&mut k, SYS, H::WriteConsole, vec![SCRATCH as u64, (-1i64) as u64]),
        ret(XmRet::InvalidParam)
    );
    assert_eq!(
        call(&mut k, SYS, H::WriteConsole, vec![SCRATCH as u64, 2000]),
        ret(XmRet::InvalidParam)
    );
}

// --- SPARC-specific ---------------------------------------------------------------------------

#[test]
fn sparc_atomics_read_modify_write() {
    let mut k = kernel(KernelBuild::Legacy);
    k.machine.mem.write_u32(AccessCtx::Kernel, SCRATCH, 10).unwrap();
    assert_eq!(call(&mut k, SYS, H::SparcAtomicAdd, vec![SCRATCH as u64, 5]), HcResult::Ret(10));
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 15);
    assert_eq!(call(&mut k, SYS, H::SparcAtomicAnd, vec![SCRATCH as u64, 0xC]), HcResult::Ret(15));
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 12);
    assert_eq!(call(&mut k, SYS, H::SparcAtomicOr, vec![SCRATCH as u64, 0x30]), HcResult::Ret(12));
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 0x3C);
    // foreign memory is rejected
    assert_eq!(
        call(&mut k, SYS, H::SparcAtomicAdd, vec![APP_BASE as u64, 1]),
        ret(XmRet::InvalidParam)
    );
    // unaligned
    assert_eq!(
        call(&mut k, SYS, H::SparcAtomicAdd, vec![(SCRATCH + 1) as u64, 1]),
        ret(XmRet::InvalidParam)
    );
}

#[test]
fn sparc_io_ports() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::SparcOutPort, vec![2, 0xAB]), OK);
    assert_eq!(call(&mut k, SYS, H::SparcInPort, vec![2, SCRATCH as u64]), OK);
    assert_eq!(k.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap(), 0xAB);
    assert_eq!(call(&mut k, SYS, H::SparcOutPort, vec![4, 0]), ret(XmRet::InvalidParam));
    assert_eq!(
        call(&mut k, SYS, H::SparcInPort, vec![9, SCRATCH as u64]),
        ret(XmRet::InvalidParam)
    );
    // I/O is privileged
    assert_eq!(call(&mut k, APP, H::SparcOutPort, vec![0, 0]), ret(XmRet::PermError));
}

#[test]
fn sparc_psr_pil_traps() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, APP, H::SparcGetPsr, vec![]), HcResult::Ret(0));
    assert_eq!(call(&mut k, APP, H::SparcSetPsr, vec![0xFF00_00AA]), OK);
    // reserved bits masked away
    assert_eq!(call(&mut k, APP, H::SparcGetPsr, vec![]), HcResult::Ret(0xAA));
    assert_eq!(call(&mut k, APP, H::SparcSetPil, vec![15]), OK);
    assert_eq!(call(&mut k, APP, H::SparcSetPil, vec![16]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, APP, H::SparcEnableTraps, vec![]), OK);
    assert_eq!(call(&mut k, APP, H::SparcDisableTraps, vec![]), OK);
    assert_eq!(call(&mut k, APP, H::SparcAckIrq, vec![8]), OK);
    assert_eq!(call(&mut k, APP, H::SparcAckIrq, vec![0]), ret(XmRet::InvalidParam));
    assert_eq!(call(&mut k, APP, H::SparcAckIrq, vec![16]), ret(XmRet::InvalidParam));
}

#[test]
fn sparc_iflush_checks_range() {
    let mut k = kernel(KernelBuild::Legacy);
    assert_eq!(call(&mut k, SYS, H::SparcIFlush, vec![SCRATCH as u64, 64]), OK);
    assert_eq!(call(&mut k, SYS, H::SparcIFlush, vec![SCRATCH as u64, 0]), ret(XmRet::NoAction));
    assert_eq!(
        call(&mut k, SYS, H::SparcIFlush, vec![APP_BASE as u64, 64]),
        ret(XmRet::InvalidParam)
    );
}

// --- dispatcher-level properties ------------------------------------------------------------

#[test]
fn every_hypercall_is_dispatchable_without_panicking() {
    // Smoke-test the whole surface with zeroed arguments on both builds.
    for build in [KernelBuild::Legacy, KernelBuild::Patched] {
        for def in xtratum::hypercall::ALL_HYPERCALLS {
            let mut k = kernel(build);
            let hc = RawHypercall::new_unchecked(def.id, vec![0; def.params.len()]);
            let _ = k.hypercall(SYS, &hc);
            // kernel may halt/reset (XM_halt_system & co) but must not panic
        }
    }
}

#[test]
fn garbage_register_model_missing_args_read_as_zero() {
    let mut k = kernel(KernelBuild::Legacy);
    // SetTimer with an empty arg vector behaves as (0,0,0): valid one-shot.
    let hc = RawHypercall::new_unchecked(H::SetTimer, vec![]);
    assert_eq!(k.hypercall(SYS, &hc).result, OK);
}
