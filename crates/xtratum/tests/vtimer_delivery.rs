//! Virtual-timer delivery end-to-end: a guest arms `XM_set_timer` on each
//! clock and observes the virtual interrupt in later slots — the *nominal*
//! use of the service whose pathological inputs the campaign attacks.

use leon3_sim::addrspace::Perms;
use std::sync::{Arc, Mutex};
use xtratum::config::{MemAreaCfg, PartitionCfg, PlanCfg, SlotCfg, XmConfig};
use xtratum::guest::{GuestProgram, GuestSet, PartitionApi};
use xtratum::hypercall::{HypercallId, RawHypercall};
use xtratum::kernel::{XmKernel, VIRQ_SHUTDOWN, VIRQ_TIMER};
use xtratum::vuln::KernelBuild;

fn config() -> XmConfig {
    XmConfig {
        partitions: vec![PartitionCfg {
            id: 0,
            name: "P0".into(),
            system: true,
            mem: vec![MemAreaCfg { base: 0x4010_0000, size: 0x1_0000, perms: Perms::RWX }],
        }],
        plans: vec![PlanCfg {
            id: 0,
            major_frame_us: 10_000,
            slots: vec![SlotCfg { partition: 0, start_us: 0, duration_us: 10_000 }],
        }],
        channels: vec![],
        hm_table: XmConfig::default_hm_table(),
        tuning: Default::default(),
    }
}

#[derive(Default)]
struct Counters {
    virq_slots: u32,
    acked_total: u32,
}

struct TimerGuest {
    clock: u64,
    interval: u64,
    armed: bool,
    counters: Arc<Mutex<Counters>>,
}

impl TimerGuest {
    fn new(clock: u64, interval: u64) -> (Self, Arc<Mutex<Counters>>) {
        let counters = Arc::new(Mutex::new(Counters::default()));
        (TimerGuest { clock, interval, armed: false, counters: counters.clone() }, counters)
    }
}

impl GuestProgram for TimerGuest {
    fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
        if !self.armed {
            self.armed = true;
            let r = api.hypercall(&RawHypercall::new_unchecked(
                HypercallId::SetTimer,
                vec![self.clock, 1, self.interval],
            ));
            assert_eq!(r, Ok(0), "arming must succeed");
            return;
        }
        if api.pending_virqs() & VIRQ_TIMER != 0 {
            let mut c = self.counters.lock().unwrap();
            c.virq_slots += 1;
            let acked = api.ack_virqs(VIRQ_TIMER);
            assert_eq!(acked, VIRQ_TIMER);
            c.acked_total += 1;
        }
        api.consume(500);
    }
}

#[test]
fn hw_clock_timer_delivers_virqs_every_frame() {
    let mut k = XmKernel::boot(config(), KernelBuild::Patched).unwrap();
    let mut guests = GuestSet::idle(1);
    let (guest, counters) = TimerGuest::new(0, 1_000); // 1 ms period, 10 ms frames
    guests.set(0, Box::new(guest));
    let s = k.run_major_frames(&mut guests, 6);
    assert!(s.healthy());
    let c = counters.lock().unwrap();
    // armed in slot 1; every subsequent slot sees a pending timer virq.
    assert_eq!(c.virq_slots, 5, "virq observed in each of the 5 later slots");
    assert_eq!(c.acked_total, 5);
    // the vtimer kept re-arming
    let t = k.hw_vtimer(0).unwrap();
    assert!(t.armed);
    assert!(t.delivered >= 50, "≈10 expiries per 10 ms frame: {}", t.delivered);
}

#[test]
fn exec_clock_timer_delivers_virqs() {
    let mut k = XmKernel::boot(config(), KernelBuild::Patched).unwrap();
    let mut guests = GuestSet::idle(1);
    let (guest, counters) = TimerGuest::new(1, 2_000);
    guests.set(0, Box::new(guest));
    let s = k.run_major_frames(&mut guests, 6);
    assert!(s.healthy());
    let c = counters.lock().unwrap();
    assert!(c.virq_slots >= 4, "exec-clock virqs observed: {}", c.virq_slots);
}

/// The event-horizon fast path: with no virtual timer armed every kernel
/// time advance is quiescent (a single clock store); arming a short
/// hw-clock timer forces advances through the full expiry-processing
/// path. `advance_stats` splits the two.
#[test]
fn advance_stats_split_quiescent_from_processed() {
    let mut k = XmKernel::boot(config(), KernelBuild::Patched).unwrap();
    let mut guests = GuestSet::idle(1);
    let s = k.run_major_frames(&mut guests, 4);
    assert!(s.healthy());
    let (quiescent, processed) = k.advance_stats();
    assert!(quiescent > 0, "idle frames must ride the fast path: {quiescent}");
    assert_eq!(processed, 0, "nothing armed, nothing to process");

    let mut k = XmKernel::boot(config(), KernelBuild::Patched).unwrap();
    let mut guests = GuestSet::idle(1);
    let (guest, _) = TimerGuest::new(0, 1_000);
    guests.set(0, Box::new(guest));
    let s = k.run_major_frames(&mut guests, 4);
    assert!(s.healthy());
    let (_, processed) = k.advance_stats();
    assert!(processed > 0, "armed vtimer expiries take the full path: {processed}");
}

#[test]
fn shutdown_virq_is_latched() {
    let mut k = XmKernel::boot(config(), KernelBuild::Patched).unwrap();
    let hc = RawHypercall::new_unchecked(HypercallId::ShutdownPartition, vec![0]);
    let _ = k.hypercall(0, &hc);
    assert_ne!(k.pending_virqs(0) & VIRQ_SHUTDOWN, 0);
    assert_eq!(k.ack_virqs(0, VIRQ_SHUTDOWN), VIRQ_SHUTDOWN);
    assert_eq!(k.pending_virqs(0) & VIRQ_SHUTDOWN, 0);
    // acking something not pending returns 0
    assert_eq!(k.ack_virqs(0, VIRQ_SHUTDOWN), 0);
    // unknown partitions are inert
    assert_eq!(k.pending_virqs(9), 0);
    assert_eq!(k.ack_virqs(9, u32::MAX), 0);
}
