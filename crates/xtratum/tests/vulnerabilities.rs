//! End-to-end reproduction of the paper's nine findings at the kernel
//! level (Section IV), plus verification that the patched build applies
//! the documented fixes.
//!
//! Each test boots a two-partition system (partition 0 is a system
//! partition, standing in for EagleEye's FDIR) and drives the kernel the
//! way the test partition would.

use leon3_sim::addrspace::Perms;
use leon3_sim::machine::SimHealth;
use xtratum::config::{MemAreaCfg, PartitionCfg, PlanCfg, SlotCfg, XmConfig};
use xtratum::guest::{GuestProgram, GuestSet, PartitionApi};
use xtratum::hm::HmEventKind;
use xtratum::hypercall::{HypercallId, RawHypercall};
use xtratum::kernel::{HcResult, NoReturnKind, XmKernel};
use xtratum::observe::{OpsEvent, ResetKind};
use xtratum::partition::PartitionStatus;
use xtratum::retcode::XmRet;
use xtratum::vuln::KernelBuild;

const P0_BASE: u32 = 0x4010_0000;
const P0_SIZE: u32 = 0x1_0000;
const SCRATCH: u32 = P0_BASE + 0x8000;
const BATCH_START: u32 = P0_BASE + 0x4000;
const BATCH_END: u32 = P0_BASE + 0x8000; // 2048 entries of 8 bytes

fn config() -> XmConfig {
    XmConfig {
        partitions: vec![
            PartitionCfg {
                id: 0,
                name: "FDIR".into(),
                system: true,
                mem: vec![MemAreaCfg { base: P0_BASE, size: P0_SIZE, perms: Perms::RWX }],
            },
            PartitionCfg {
                id: 1,
                name: "AOCS".into(),
                system: false,
                mem: vec![MemAreaCfg { base: 0x4020_0000, size: 0x1_0000, perms: Perms::RWX }],
            },
        ],
        plans: vec![PlanCfg {
            id: 0,
            major_frame_us: 250_000,
            slots: vec![
                SlotCfg { partition: 0, start_us: 0, duration_us: 50_000 },
                SlotCfg { partition: 1, start_us: 50_000, duration_us: 200_000 },
            ],
        }],
        channels: vec![],
        hm_table: XmConfig::default_hm_table(),
        tuning: Default::default(),
    }
}

/// A guest that issues one hypercall per slot and records outcomes.
struct OneShot {
    hc: RawHypercall,
    results: Vec<Result<i32, NoReturnKind>>,
    fired: bool,
}

impl OneShot {
    fn new(hc: RawHypercall) -> Self {
        OneShot { hc, results: Vec::new(), fired: false }
    }
}

impl GuestProgram for OneShot {
    fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
        if self.fired {
            return;
        }
        self.fired = true;
        let r = api.hypercall(&self.hc.clone());
        self.results.push(r);
    }
}

fn boot(build: KernelBuild) -> XmKernel {
    XmKernel::boot(config(), build).expect("boot")
}

fn call(k: &mut XmKernel, id: HypercallId, args: Vec<u64>) -> HcResult {
    let hc = RawHypercall::new(id, args).unwrap();
    k.hypercall(0, &hc).result
}

// --- Issues 1-3: XM_reset_system mode decoding -----------------------------

#[test]
fn legacy_reset_system_2_causes_cold_reset() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::ResetSystem, vec![2]);
    assert_eq!(r, HcResult::NoReturn(NoReturnKind::SystemColdReset));
    assert_eq!(k.summary().cold_resets, 1);
}

#[test]
fn legacy_reset_system_16_causes_cold_reset() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::ResetSystem, vec![16]);
    assert_eq!(r, HcResult::NoReturn(NoReturnKind::SystemColdReset));
    let s = k.summary();
    assert_eq!(s.system_resets(ResetKind::Cold).count(), 1);
}

#[test]
fn legacy_reset_system_max_u32_causes_warm_reset() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::ResetSystem, vec![4_294_967_295]);
    assert_eq!(r, HcResult::NoReturn(NoReturnKind::SystemWarmReset));
    assert_eq!(k.summary().warm_resets, 1);
}

#[test]
fn reset_system_valid_modes_work_on_both_builds() {
    for build in [KernelBuild::Legacy, KernelBuild::Patched] {
        let mut k = boot(build);
        assert_eq!(
            call(&mut k, HypercallId::ResetSystem, vec![0]),
            HcResult::NoReturn(NoReturnKind::SystemColdReset),
            "{build:?}"
        );
        assert_eq!(
            call(&mut k, HypercallId::ResetSystem, vec![1]),
            HcResult::NoReturn(NoReturnKind::SystemWarmReset),
            "{build:?}"
        );
    }
}

#[test]
fn patched_reset_system_rejects_invalid_modes() {
    let mut k = boot(KernelBuild::Patched);
    for mode in [2u64, 16, 4_294_967_295] {
        let r = call(&mut k, HypercallId::ResetSystem, vec![mode]);
        assert_eq!(r, HcResult::Ret(XmRet::InvalidParam.code()), "mode {mode}");
    }
    assert_eq!(k.summary().cold_resets + k.summary().warm_resets, 0);
}

// --- Issue 4: XM_set_timer(0,1,1) → recursive handler → XM halt ------------

#[test]
fn legacy_set_timer_tiny_interval_halts_kernel() {
    let mut k = boot(KernelBuild::Legacy);
    let mut guests = GuestSet::idle(2);
    guests.set(
        0,
        Box::new(OneShot::new(RawHypercall::new(HypercallId::SetTimer, vec![0, 1, 1]).unwrap())),
    );
    let s = k.run_major_frames(&mut guests, 2);
    let reason = s.kernel_halt_reason.expect("kernel must halt");
    assert!(reason.contains("KernelTrap"), "{reason}");
    assert!(s.hm_log.iter().any(|e| matches!(e.kind, HmEventKind::KernelTrap { tt: 0x05, .. })));
    assert!(matches!(s.sim_health, SimHealth::Running), "the simulator survives; XM does not");
}

// --- Issue 5: XM_set_timer(1,1,1) → timer trap storm → simulator crash -----

#[test]
fn legacy_set_timer_exec_clock_crashes_simulator() {
    let mut k = boot(KernelBuild::Legacy);
    let mut guests = GuestSet::idle(2);
    guests.set(
        0,
        Box::new(OneShot::new(RawHypercall::new(HypercallId::SetTimer, vec![1, 1, 1]).unwrap())),
    );
    let s = k.run_major_frames(&mut guests, 2);
    match s.sim_health {
        SimHealth::Crashed { reason, .. } => assert!(reason.contains("trap storm"), "{reason}"),
        SimHealth::Running => panic!("simulator should have crashed"),
    }
}

// --- Issue 6: negative interval silently accepted ---------------------------

#[test]
fn legacy_set_timer_negative_interval_returns_ok() {
    let mut k = boot(KernelBuild::Legacy);
    for clock in [0u64, 1] {
        let r = call(&mut k, HypercallId::SetTimer, vec![clock, 1, i64::MIN as u64]);
        assert_eq!(r, HcResult::Ret(XmRet::Ok.code()), "clock {clock}");
    }
    // ... and nothing catastrophic happens afterwards.
    let mut guests = GuestSet::idle(2);
    let s = k.run_major_frames(&mut guests, 2);
    assert!(s.healthy());
}

#[test]
fn patched_set_timer_rejects_negative_and_tiny_intervals() {
    let mut k = boot(KernelBuild::Patched);
    for (clock, interval) in
        [(0i64, i64::MIN), (1, i64::MIN), (0, -1), (0, 1), (1, 1), (0, 49), (1, 49)]
    {
        let r = call(&mut k, HypercallId::SetTimer, vec![clock as u64, 1, interval as u64]);
        assert_eq!(
            r,
            HcResult::Ret(XmRet::InvalidParam.code()),
            "clock {clock} interval {interval}"
        );
    }
    // The documented minimum (50 µs) and one-shot (0) are accepted.
    assert_eq!(call(&mut k, HypercallId::SetTimer, vec![0, 1, 50]), HcResult::Ret(0));
    assert_eq!(call(&mut k, HypercallId::SetTimer, vec![0, 1, 0]), HcResult::Ret(0));
    let mut guests = GuestSet::idle(2);
    let s = k.run_major_frames(&mut guests, 4);
    assert!(s.healthy(), "50 µs timers must be survivable: {:?}", s.kernel_halt_reason);
}

#[test]
fn patched_exec_clock_with_min_interval_survives() {
    let mut k = boot(KernelBuild::Patched);
    assert_eq!(call(&mut k, HypercallId::SetTimer, vec![1, 1, 50]), HcResult::Ret(0));
    let mut guests = GuestSet::idle(2);
    let s = k.run_major_frames(&mut guests, 4);
    assert!(s.healthy());
}

// --- Issues 7-8: XM_multicall invalid pointers ------------------------------

#[test]
fn legacy_multicall_null_start_aborts_partition() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::Multicall, vec![0, BATCH_START as u64]);
    assert_eq!(r, HcResult::NoReturn(NoReturnKind::CallerHalted));
    assert_eq!(k.partition_status(0), Some(PartitionStatus::Halted));
    let s = k.summary();
    assert!(s.hm_log.iter().any(|e| matches!(e.kind, HmEventKind::PartitionTrap { tt: 0x09, .. })));
    assert!(s.console.contains("unhandled"), "{}", s.console);
}

#[test]
fn legacy_multicall_unaligned_start_aborts_partition() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::Multicall, vec![1, BATCH_START as u64]);
    assert_eq!(r, HcResult::NoReturn(NoReturnKind::CallerHalted));
    let s = k.summary();
    assert!(s.hm_log.iter().any(|e| matches!(e.kind, HmEventKind::PartitionTrap { tt: 0x07, .. })));
}

#[test]
fn legacy_multicall_bad_end_pointer_aborts_partition() {
    let mut k = boot(KernelBuild::Legacy);
    // Valid start inside partition RAM, end far beyond it: the kernel
    // walks off the end of the region and faults.
    let r = call(&mut k, HypercallId::Multicall, vec![BATCH_START as u64, 0xFFFF_FFFC]);
    assert_eq!(r, HcResult::NoReturn(NoReturnKind::CallerHalted));
    assert_eq!(k.partition_status(0), Some(PartitionStatus::Halted));
}

#[test]
fn legacy_multicall_end_before_start_is_rejected() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::Multicall, vec![BATCH_END as u64, BATCH_START as u64]);
    assert_eq!(r, HcResult::Ret(XmRet::InvalidParam.code()));
    assert!(k.alive());
}

#[test]
fn legacy_multicall_empty_batch_is_ok() {
    let mut k = boot(KernelBuild::Legacy);
    let r = call(&mut k, HypercallId::Multicall, vec![BATCH_START as u64, BATCH_START as u64]);
    assert_eq!(r, HcResult::Ret(XmRet::Ok.code()));
}

// --- Issue 9: XM_multicall temporal isolation break --------------------------

#[test]
fn legacy_multicall_large_batch_breaks_temporal_isolation() {
    // Use an overrun HM action of partition warm reset, as EagleEye does.
    let mut cfg = config();
    cfg.hm_table
        .set(xtratum::hm::HmEventClass::SchedOverrun, xtratum::hm::HmAction::ResetPartitionWarm);
    let mut k = XmKernel::boot(cfg, KernelBuild::Legacy).unwrap();
    let mut guests = GuestSet::idle(2);
    guests.set(
        0,
        Box::new(OneShot::new(
            RawHypercall::new(HypercallId::Multicall, vec![BATCH_START as u64, BATCH_END as u64])
                .unwrap(),
        )),
    );
    let s = k.run_major_frames(&mut guests, 2);
    // 2048 entries × 40 µs = 81 920 µs ≫ the 50 000 µs FDIR slot.
    let overrun = s
        .hm_log
        .iter()
        .find_map(|e| match e.kind {
            HmEventKind::SchedOverrun { overrun_us } => Some(overrun_us),
            _ => None,
        })
        .expect("overrun event");
    assert!(overrun > 30_000, "overrun {overrun}");
    assert!(s
        .ops_log
        .iter()
        .any(|r| matches!(r.event, OpsEvent::PartitionResetByHm { target: 0 })));
    assert!(s
        .ops_log
        .iter()
        .any(|r| matches!(r.event, OpsEvent::MulticallExecuted { by: 0, entries: 2048 })));
}

#[test]
fn patched_multicall_is_removed() {
    let mut k = boot(KernelBuild::Patched);
    for args in
        [vec![0u64, 0], vec![0, BATCH_START as u64], vec![BATCH_START as u64, BATCH_END as u64]]
    {
        let r = call(&mut k, HypercallId::Multicall, args);
        assert_eq!(r, HcResult::Ret(XmRet::UnknownHypercall.code()));
    }
    assert!(k.alive());
    assert_eq!(k.partition_status(0), Some(PartitionStatus::Ready));
}

// --- Robust behaviours around the findings ----------------------------------

#[test]
fn get_time_is_robust_for_all_dictionary_values() {
    let mut k = boot(KernelBuild::Legacy);
    // clock 2 invalid, NULL pointer invalid, valid combination works.
    assert_eq!(
        call(&mut k, HypercallId::GetTime, vec![2, SCRATCH as u64]),
        HcResult::Ret(XmRet::InvalidParam.code())
    );
    assert_eq!(
        call(&mut k, HypercallId::GetTime, vec![0, 0]),
        HcResult::Ret(XmRet::InvalidParam.code())
    );
    assert_eq!(call(&mut k, HypercallId::GetTime, vec![0, SCRATCH as u64]), HcResult::Ret(0));
    assert_eq!(call(&mut k, HypercallId::GetTime, vec![1, SCRATCH as u64]), HcResult::Ret(0));
}

#[test]
fn memory_copy_validates_against_caller_rights() {
    let mut k = boot(KernelBuild::Legacy);
    // copying kernel memory is denied even though the kernel itself could
    assert_eq!(
        call(&mut k, HypercallId::MemoryCopy, vec![SCRATCH as u64, 0x4000_0000, 16]),
        HcResult::Ret(XmRet::InvalidParam.code())
    );
    // huge size fails the range check
    assert_eq!(
        call(&mut k, HypercallId::MemoryCopy, vec![SCRATCH as u64, P0_BASE as u64, 0xFFFF_FFFF]),
        HcResult::Ret(XmRet::InvalidParam.code())
    );
    // valid copy works
    assert_eq!(
        call(&mut k, HypercallId::MemoryCopy, vec![SCRATCH as u64, P0_BASE as u64, 64]),
        HcResult::Ret(0)
    );
    // size 0 is a no-action
    assert_eq!(
        call(&mut k, HypercallId::MemoryCopy, vec![SCRATCH as u64, P0_BASE as u64, 0]),
        HcResult::Ret(XmRet::NoAction.code())
    );
}

#[test]
fn reset_partition_is_robust_fig2_dictionary() {
    let mut k = boot(KernelBuild::Legacy);
    // invalid ids
    for id in [-2147483648i64, -16, -1, 2, 16, 2147483647] {
        let r = call(&mut k, HypercallId::ResetPartition, vec![id as u64, 0, 0]);
        assert_eq!(r, HcResult::Ret(XmRet::InvalidParam.code()), "id {id}");
    }
    // invalid modes
    for mode in [2u64, 16, 4_294_967_295] {
        let r = call(&mut k, HypercallId::ResetPartition, vec![1, mode, 0]);
        assert_eq!(r, HcResult::Ret(XmRet::InvalidParam.code()), "mode {mode}");
    }
    // valid reset of another partition returns OK
    assert_eq!(call(&mut k, HypercallId::ResetPartition, vec![1, 0, 7]), HcResult::Ret(0));
    // valid self-reset does not return
    assert_eq!(
        call(&mut k, HypercallId::ResetPartition, vec![0, 1, 0]),
        HcResult::NoReturn(NoReturnKind::CallerReset)
    );
}

#[test]
fn suspend_resume_lifecycle() {
    let mut k = boot(KernelBuild::Legacy);
    assert_eq!(call(&mut k, HypercallId::SuspendPartition, vec![1]), HcResult::Ret(0));
    assert_eq!(k.partition_status(1), Some(PartitionStatus::Suspended));
    assert_eq!(
        call(&mut k, HypercallId::SuspendPartition, vec![1]),
        HcResult::Ret(XmRet::NoAction.code())
    );
    assert_eq!(call(&mut k, HypercallId::ResumePartition, vec![1]), HcResult::Ret(0));
    assert_eq!(k.partition_status(1), Some(PartitionStatus::Ready));
    assert_eq!(
        call(&mut k, HypercallId::ResumePartition, vec![1]),
        HcResult::Ret(XmRet::NoAction.code())
    );
    // suspended partitions skip their slots but the system stays healthy
    call(&mut k, HypercallId::SuspendPartition, vec![1]);
    let mut guests = GuestSet::idle(2);
    let s = k.run_major_frames(&mut guests, 2);
    assert!(s.healthy());
    assert_eq!(s.partition_final[1], PartitionStatus::Suspended);
}

#[test]
fn spatial_isolation_guest_fault_is_contained() {
    struct Rogue;
    impl GuestProgram for Rogue {
        fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
            // AOCS (partition 1) tries to write FDIR memory.
            let _ = api.write_u32(P0_BASE, 0xDEAD_BEEF);
        }
    }
    let mut k = boot(KernelBuild::Legacy);
    let mut guests = GuestSet::idle(2);
    guests.set(1, Box::new(Rogue));
    let s = k.run_major_frames(&mut guests, 1);
    assert!(s.kernel_halt_reason.is_none(), "fault is contained to the partition");
    assert_eq!(s.partition_final[1], PartitionStatus::Halted);
    assert_eq!(s.partition_final[0], PartitionStatus::Ready);
    assert!(s
        .hm_log
        .iter()
        .any(|e| e.partition == Some(1)
            && matches!(e.kind, HmEventKind::PartitionTrap { tt: 0x09, .. })));
}

#[test]
fn plan_switch_happens_at_frame_boundary() {
    let mut cfg = config();
    cfg.plans.push(PlanCfg {
        id: 1,
        major_frame_us: 250_000,
        slots: vec![SlotCfg { partition: 0, start_us: 0, duration_us: 250_000 }],
    });
    let mut k = XmKernel::boot(cfg, KernelBuild::Legacy).unwrap();
    let r = call(&mut k, HypercallId::SwitchSchedPlan, vec![1, SCRATCH as u64]);
    assert_eq!(r, HcResult::Ret(0));
    let mut guests = GuestSet::idle(2);
    let s = k.run_major_frames(&mut guests, 1);
    assert!(s
        .ops_log
        .iter()
        .any(|rec| matches!(rec.event, OpsEvent::PlanSwitched { from: 0, to: 1 })));
    // the stored "current plan" out-parameter was plan 0 at call time
    assert_eq!(k.machine.mem.read_u32(leon3_sim::AccessCtx::Kernel, SCRATCH).unwrap(), 0);
}
