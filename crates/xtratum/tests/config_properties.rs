//! Property test: the configuration validator accepts exactly the slot
//! layouts an abstract model accepts (non-overlapping, in-order,
//! non-empty, within the major frame).

use leon3_sim::addrspace::Perms;
use proptest::prelude::*;
use xtratum::config::{MemAreaCfg, PartitionCfg, PlanCfg, SlotCfg, XmConfig};

fn base_config(slots: Vec<SlotCfg>, major: u64) -> XmConfig {
    XmConfig {
        partitions: vec![
            PartitionCfg {
                id: 0,
                name: "sys".into(),
                system: true,
                mem: vec![MemAreaCfg { base: 0x4010_0000, size: 0x1000, perms: Perms::RWX }],
            },
            PartitionCfg {
                id: 1,
                name: "app".into(),
                system: false,
                mem: vec![MemAreaCfg { base: 0x4020_0000, size: 0x1000, perms: Perms::RWX }],
            },
        ],
        plans: vec![PlanCfg { id: 0, major_frame_us: major, slots }],
        channels: vec![],
        hm_table: XmConfig::default_hm_table(),
        tuning: Default::default(),
    }
}

fn model_valid(slots: &[SlotCfg], major: u64) -> bool {
    let mut cursor = 0u64;
    for s in slots {
        if s.partition > 1 || s.duration_us == 0 || s.start_us < cursor {
            return false;
        }
        cursor = s.start_us + s.duration_us;
    }
    cursor <= major
}

proptest! {
    #[test]
    fn validator_matches_slot_model(
        raw in proptest::collection::vec((0u32..3, 0u64..2_000, 0u64..1_200), 0..6),
        major in 1u64..4_000,
    ) {
        let slots: Vec<SlotCfg> = raw
            .iter()
            .map(|&(p, start, dur)| SlotCfg { partition: p, start_us: start, duration_us: dur })
            .collect();
        let cfg = base_config(slots.clone(), major);
        let errs = cfg.validate();
        prop_assert_eq!(
            errs.is_empty(),
            model_valid(&slots, major),
            "slots {:?} major {} -> {:?}",
            slots,
            major,
            errs
        );
    }

    /// A valid configuration always boots, and booting never panics on an
    /// invalid one (it reports errors instead).
    #[test]
    fn boot_is_total_over_slot_layouts(
        raw in proptest::collection::vec((0u32..3, 0u64..2_000, 0u64..1_200), 0..5),
        major in 1u64..4_000,
    ) {
        let slots: Vec<SlotCfg> = raw
            .iter()
            .map(|&(p, start, dur)| SlotCfg { partition: p, start_us: start, duration_us: dur })
            .collect();
        let cfg = base_config(slots.clone(), major);
        let ok = model_valid(&slots, major);
        let boot = xtratum::kernel::XmKernel::boot(cfg, xtratum::vuln::KernelBuild::Patched);
        prop_assert_eq!(boot.is_ok(), ok);
    }
}
