//! Property test: the configuration validator accepts exactly the slot
//! layouts an abstract model accepts (non-overlapping, in-order,
//! non-empty, within the major frame). Randomised via `testkit`.

use leon3_sim::addrspace::Perms;
use testkit::Rng;
use xtratum::config::{MemAreaCfg, PartitionCfg, PlanCfg, SlotCfg, XmConfig};

fn base_config(slots: Vec<SlotCfg>, major: u64) -> XmConfig {
    XmConfig {
        partitions: vec![
            PartitionCfg {
                id: 0,
                name: "sys".into(),
                system: true,
                mem: vec![MemAreaCfg { base: 0x4010_0000, size: 0x1000, perms: Perms::RWX }],
            },
            PartitionCfg {
                id: 1,
                name: "app".into(),
                system: false,
                mem: vec![MemAreaCfg { base: 0x4020_0000, size: 0x1000, perms: Perms::RWX }],
            },
        ],
        plans: vec![PlanCfg { id: 0, major_frame_us: major, slots }],
        channels: vec![],
        hm_table: XmConfig::default_hm_table(),
        tuning: Default::default(),
    }
}

fn model_valid(slots: &[SlotCfg], major: u64) -> bool {
    let mut cursor = 0u64;
    for s in slots {
        if s.partition > 1 || s.duration_us == 0 || s.start_us < cursor {
            return false;
        }
        cursor = s.start_us + s.duration_us;
    }
    cursor <= major
}

fn arb_slots(rng: &mut Rng, max_slots: usize) -> (Vec<SlotCfg>, u64) {
    let slots = rng.vec_of(0, max_slots, |r| SlotCfg {
        partition: r.range_u64(0, 3) as u32,
        start_us: r.range_u64(0, 2_000),
        duration_us: r.range_u64(0, 1_200),
    });
    (slots, rng.range_u64(1, 4_000))
}

#[test]
fn validator_matches_slot_model() {
    testkit::check("validator_matches_slot_model", 512, |rng| {
        let (slots, major) = arb_slots(rng, 6);
        let cfg = base_config(slots.clone(), major);
        let errs = cfg.validate();
        assert_eq!(
            errs.is_empty(),
            model_valid(&slots, major),
            "slots {slots:?} major {major} -> {errs:?}"
        );
    });
}

/// A valid configuration always boots, and booting never panics on an
/// invalid one (it reports errors instead).
#[test]
fn boot_is_total_over_slot_layouts() {
    testkit::check("boot_is_total_over_slot_layouts", 256, |rng| {
        let (slots, major) = arb_slots(rng, 5);
        let cfg = base_config(slots.clone(), major);
        let ok = model_valid(&slots, major);
        let boot = xtratum::kernel::XmKernel::boot(cfg, xtratum::vuln::KernelBuild::Patched);
        assert_eq!(boot.is_ok(), ok);
    });
}
