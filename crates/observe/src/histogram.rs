//! Fixed log-bucket latency histograms, mergeable across workers.

/// Bucket `i` holds latencies in `[2^(i-1), 2^i)` µs (bucket 0 = 0 µs);
/// the last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 16;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; HIST_BUCKETS], count: 0, total_us: 0, max_us: 0 }
    }
}

impl LatencyHistogram {
    #[inline]
    pub fn observe(&mut self, us: u64) {
        let bucket =
            if us == 0 { 0 } else { (64 - us.leading_zeros() as usize).min(HIST_BUCKETS - 1) };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// One histogram per payload code (for us: per hypercall number).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSet {
    pub by_code: Vec<LatencyHistogram>,
}

impl HistogramSet {
    pub fn new(codes: usize) -> Self {
        HistogramSet { by_code: vec![LatencyHistogram::default(); codes] }
    }

    #[inline]
    pub fn observe(&mut self, code: u32, us: u64) {
        if let Some(h) = self.by_code.get_mut(code as usize) {
            h.observe(us);
        }
    }

    pub fn merge(&mut self, other: &HistogramSet) {
        if self.by_code.len() < other.by_code.len() {
            self.by_code.resize(other.by_code.len(), LatencyHistogram::default());
        }
        for (code, h) in other.by_code.iter().enumerate() {
            self.by_code[code].merge(h);
        }
    }

    /// `(code, histogram)` pairs for codes that saw at least one sample.
    pub fn nonzero(&self) -> impl Iterator<Item = (u32, &LatencyHistogram)> {
        self.by_code.iter().enumerate().filter(|(_, h)| h.count > 0).map(|(c, h)| (c as u32, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        let mut h = LatencyHistogram::default();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1: [1,2)
        h.observe(2); // bucket 2: [2,4)
        h.observe(3); // bucket 2
        h.observe(4); // bucket 3: [4,8)
        h.observe(u64::MAX); // clamped to last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(h.count, 6);
        assert_eq!(h.max_us, u64::MAX);
    }

    /// Audit of the log2 bucketing at every bucket edge: for each bucket
    /// `i` in `1..15`, the half-open range is `[2^(i-1), 2^i)`, so
    /// `2^(i-1)` (lowest member), `2^i - 1` (highest member) land in
    /// bucket `i` and `2^i` lands in bucket `i+1`. Bucket 0 is exactly
    /// 0 µs and the last bucket absorbs everything from `2^14` up.
    #[test]
    fn every_bucket_edge_is_pinned() {
        for i in 1..HIST_BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            let mut h = LatencyHistogram::default();
            h.observe(lo);
            assert_eq!(h.buckets[i], 1, "2^{} = {lo} must open bucket {i}", i - 1);
            let mut h = LatencyHistogram::default();
            h.observe(hi);
            assert_eq!(h.buckets[i], 1, "2^{i}-1 = {hi} must close bucket {i}");
        }
        // The overflow bucket starts exactly at 2^14 and never spills.
        let mut h = LatencyHistogram::default();
        h.observe((1 << 14) - 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 2], 1, "2^14-1 is the last finite bucket's top");
        h.observe(1 << 14);
        h.observe(1 << 20);
        h.observe(u64::MAX);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 3, "everything >= 2^14 lands in the last bucket");
        assert_eq!(h.count, 4);
    }

    #[test]
    fn zero_latency_events_do_not_leak_into_bucket_one() {
        let mut h = LatencyHistogram::default();
        for _ in 0..1000 {
            h.observe(0);
        }
        assert_eq!(h.buckets[0], 1000);
        assert_eq!(h.buckets[1], 0);
        assert_eq!(h.total_us, 0);
        assert_eq!(h.max_us, 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn saturating_total_survives_u64_max_observations() {
        let mut h = LatencyHistogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.total_us, u64::MAX, "total saturates instead of wrapping");
        assert_eq!(h.count, 2);
        assert_eq!(h.max_us, u64::MAX);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = HistogramSet::new(4);
        let mut b = HistogramSet::new(4);
        a.observe(1, 5);
        b.observe(1, 7);
        b.observe(3, 100);
        a.merge(&b);
        assert_eq!(a.by_code[1].count, 2);
        assert_eq!(a.by_code[1].total_us, 12);
        assert_eq!(a.by_code[3].max_us, 100);
        assert_eq!(a.nonzero().count(), 2);
    }
}
