//! Fixed-capacity event ring with overwrite-oldest semantics.

use crate::{DrainedFlight, Event};

/// Preallocated circular event buffer. `push` never allocates: once the
/// buffer is full the oldest event is overwritten and counted as dropped.
/// Timestamps are clamped monotone within one recording window so that
/// consumers (span exporters, the triage timeline) can rely on ordering.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Event>,
    cap: usize,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
    dropped: u64,
    last_t: u64,
}

impl Ring {
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Ring { buf: Vec::with_capacity(cap), cap, start: 0, dropped: 0, last_t: 0 }
    }

    /// Timestamp of the most recently pushed event in this window.
    #[inline]
    pub fn last_timestamp(&self) -> u64 {
        self.last_t
    }

    #[inline]
    pub fn push(&mut self, mut e: Event) {
        if e.t_us < self.last_t {
            e.t_us = self.last_t;
        }
        self.last_t = e.t_us;
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.start] = e;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Take every event (oldest first) and reset the window. The backing
    /// buffer's capacity is retained.
    pub fn drain(&mut self) -> DrainedFlight {
        let mut events = Vec::with_capacity(self.buf.len());
        events.extend_from_slice(&self.buf[self.start..]);
        events.extend_from_slice(&self.buf[..self.start]);
        self.buf.clear();
        self.start = 0;
        let dropped = self.dropped;
        self.dropped = 0;
        self.last_t = 0;
        DrainedFlight { events, dropped }
    }
}
