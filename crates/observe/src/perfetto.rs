//! Chrome trace-event JSON writer (the `trace.json` format Perfetto and
//! `chrome://tracing` load). Purely string-building; no I/O.

use std::collections::HashMap;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Streaming builder for a `traceEvents` JSON document.
///
/// Tracks per-`(pid, tid)` open `B` spans so that orphan `E` events are
/// dropped and dangling `B` spans are auto-closed by [`finish`]
/// (`ChromeTraceWriter::finish`) — the output always has matched,
/// properly nested span pairs.
pub struct ChromeTraceWriter {
    out: String,
    any: bool,
    open: HashMap<(u64, u64), Vec<String>>,
    last_ts: u64,
}

impl Default for ChromeTraceWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceWriter {
    pub fn new() -> Self {
        ChromeTraceWriter {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            any: false,
            open: HashMap::new(),
            last_ts: 0,
        }
    }

    fn emit(&mut self, body: &str) {
        if self.any {
            self.out.push_str(",\n");
        }
        self.any = true;
        self.out.push_str(body);
    }

    /// Name a process track (metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let body = format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
        self.emit(&body);
    }

    /// Name a thread track (metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let body = format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
        self.emit(&body);
    }

    /// Open a duration span (`ph: B`).
    pub fn begin(&mut self, pid: u64, tid: u64, ts: u64, name: &str, args: Option<&str>) {
        let ts = self.clamp(ts);
        let name = escape(name);
        let args = args.map(|a| format!(",\"args\":{a}")).unwrap_or_default();
        let body = format!(
            "{{\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\"{args}}}"
        );
        self.emit(&body);
        self.open.entry((pid, tid)).or_default().push(name);
    }

    /// Close the innermost open span on `(pid, tid)`. An `E` without a
    /// matching `B` is silently dropped.
    pub fn end(&mut self, pid: u64, tid: u64, ts: u64) {
        let ts = self.clamp(ts);
        let Some(name) = self.open.get_mut(&(pid, tid)).and_then(|s| s.pop()) else {
            return;
        };
        let body =
            format!("{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\"}}");
        self.emit(&body);
    }

    /// Self-contained span (`ph: X`).
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        ts: u64,
        dur: u64,
        name: &str,
        args: Option<&str>,
    ) {
        let ts = self.clamp(ts);
        let args = args.map(|a| format!(",\"args\":{a}")).unwrap_or_default();
        let body = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":\"{}\"{args}}}",
            escape(name)
        );
        self.emit(&body);
    }

    /// Thread-scoped instant event (`ph: i`).
    pub fn instant(&mut self, pid: u64, tid: u64, ts: u64, name: &str, args: Option<&str>) {
        let ts = self.clamp(ts);
        let args = args.map(|a| format!(",\"args\":{a}")).unwrap_or_default();
        let body = format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":\"{}\"{args}}}",
            escape(name)
        );
        self.emit(&body);
    }

    /// Counter track sample (`ph: C`). Perfetto renders one stacked
    /// area chart per `(pid, name)` track from these.
    pub fn counter(&mut self, pid: u64, tid: u64, ts: u64, name: &str, value: f64) {
        let ts = self.clamp(ts);
        let body = format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"{}\",\"args\":{{\"value\":{value}}}}}",
            escape(name)
        );
        self.emit(&body);
    }

    /// Close every open span on `(pid, tid)` at `ts` (innermost first).
    pub fn close_open(&mut self, pid: u64, tid: u64, ts: u64) {
        while self.open.get(&(pid, tid)).is_some_and(|s| !s.is_empty()) {
            self.end(pid, tid, ts);
        }
    }

    /// Emitted timestamps are kept globally non-decreasing; span pairing
    /// guarantees this for well-formed input, and the clamp makes the
    /// invariant unconditional for validators.
    fn clamp(&mut self, ts: u64) -> u64 {
        let ts = ts.max(self.last_ts);
        self.last_ts = ts;
        ts
    }

    /// Auto-close any still-open spans and return the final JSON document.
    pub fn finish(mut self) -> String {
        let open: Vec<(u64, u64)> = self.open.keys().copied().collect();
        let ts = self.last_ts;
        for (pid, tid) in open {
            self.close_open(pid, tid, ts);
        }
        self.out.push_str("\n]}\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_matched_spans_and_valid_json_shape() {
        let mut w = ChromeTraceWriter::new();
        w.process_name(1, "campaign");
        w.thread_name(1, 2, "partition \"A\"");
        w.begin(1, 2, 10, "slot", None);
        w.begin(1, 2, 12, "XM_set_timer", Some("{\"nr\":19}"));
        w.end(1, 2, 17);
        w.instant(1, 2, 18, "hm", None);
        w.end(1, 2, 20);
        w.end(1, 2, 21); // orphan: dropped
        let json = w.finish();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("partition \\\"A\\\""));
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut w = ChromeTraceWriter::new();
        w.begin(1, 1, 5, "outer", None);
        w.begin(1, 1, 6, "inner", None);
        let json = w.finish();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        // innermost closed first
        let inner_e = json.find("\"E\",\"pid\":1,\"tid\":1,\"ts\":6,\"name\":\"inner\"");
        assert!(inner_e.is_some());
    }

    #[test]
    fn counter_samples_render_with_value_args() {
        let mut w = ChromeTraceWriter::new();
        w.counter(1, 100, 10, "coverage_cells", 512.0);
        w.counter(1, 100, 20, "execs_per_sec", 1250.5);
        let json = w.finish();
        assert!(json.contains(
            "\"ph\":\"C\",\"pid\":1,\"tid\":100,\"ts\":10,\"name\":\"coverage_cells\",\"args\":{\"value\":512}"
        ));
        assert!(json.contains("\"name\":\"execs_per_sec\",\"args\":{\"value\":1250.5}"));
    }

    #[test]
    fn timestamps_never_regress() {
        let mut w = ChromeTraceWriter::new();
        w.instant(1, 1, 100, "a", None);
        w.instant(1, 1, 50, "b", None);
        let json = w.finish();
        assert!(json.contains("\"ts\":100,\"s\":\"t\",\"name\":\"b\""));
    }
}
