//! Typed metrics registry with OpenMetrics and JSONL renderers.
//!
//! The campaign layers collect raw numbers contention-free per worker
//! (plain `u64` fields in `skrt`'s `LocalMetrics`, log2 histograms from
//! [`crate::histogram`]) and fold them deterministically once per worker
//! at shard end. This module is the export side of that pipeline: the
//! folded totals are pushed into a [`TelemetryRegistry`] as typed
//! families — counters, gauges, log2 histograms — and rendered as
//! OpenMetrics text (`--metrics-out`) or JSONL snapshot lines.
//!
//! The registry is build-once/render-once: it never sits on a hot path,
//! so it can afford owned strings and label vectors. Nothing here feeds
//! back into execution — exports are observationally transparent by
//! construction.

use crate::histogram::{LatencyHistogram, HIST_BUCKETS};
use std::fmt::Write as _;

/// The three OpenMetrics family types the campaign stack exports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample value within a family.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Int(u64),
    Float(f64),
    Hist(LatencyHistogram),
}

#[derive(Clone, Debug, PartialEq)]
struct Sample {
    labels: Vec<(String, String)>,
    value: Value,
}

/// A metric family: one name/kind/help triple plus its samples (one per
/// label set).
#[derive(Clone, Debug, PartialEq)]
pub struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// Inclusive upper bound of log2 histogram bucket `i`, or `None` for the
/// last (overflow) bucket. Bucket 0 holds exactly 0 µs; bucket `i` holds
/// `[2^(i-1), 2^i)`, so its largest representable value is `2^i - 1`.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i + 1 >= HIST_BUCKETS {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// Typed metrics registry. Push folded campaign totals in, render
/// OpenMetrics text or JSONL snapshots out.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryRegistry {
    families: Vec<Family>,
}

impl TelemetryRegistry {
    pub fn new() -> Self {
        TelemetryRegistry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Number of families registered so far.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    pub fn push_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, MetricKind::Counter, labels, Value::Int(value));
    }

    pub fn push_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, help, MetricKind::Gauge, labels, Value::Float(value));
    }

    pub fn push_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        self.push(name, help, MetricKind::Histogram, labels, Value::Hist(*hist));
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        v: Value,
    ) {
        debug_assert!(valid_metric_name(name), "invalid metric name: {name}");
        debug_assert!(
            labels.iter().all(|(k, _)| valid_label_name(k)),
            "invalid label name in {labels:?}"
        );
        let labels: Vec<(String, String)> =
            labels.iter().map(|&(k, val)| (k.to_string(), val.to_string())).collect();
        let sample = Sample { labels, value: v };
        if let Some(fam) = self.families.iter_mut().find(|f| f.name == name) {
            debug_assert_eq!(fam.kind, kind, "metric {name} re-registered with a different kind");
            fam.samples.push(sample);
            return;
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: vec![sample],
        });
    }

    /// Render the registry as OpenMetrics text (one `# TYPE`/`# HELP`
    /// block per family, `# EOF` terminator).
    pub fn render_openmetrics(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            for s in &fam.samples {
                match (&s.value, fam.kind) {
                    (Value::Int(v), MetricKind::Counter) => {
                        let _ =
                            writeln!(out, "{}_total{} {v}", fam.name, label_set(&s.labels, None));
                    }
                    (Value::Int(v), _) => {
                        let _ = writeln!(out, "{}{} {v}", fam.name, label_set(&s.labels, None));
                    }
                    (Value::Float(v), MetricKind::Counter) => {
                        let _ = writeln!(
                            out,
                            "{}_total{} {}",
                            fam.name,
                            label_set(&s.labels, None),
                            float_value(*v)
                        );
                    }
                    (Value::Float(v), _) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            fam.name,
                            label_set(&s.labels, None),
                            float_value(*v)
                        );
                    }
                    (Value::Hist(h), _) => render_openmetrics_hist(&mut out, fam, &s.labels, h),
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Render the registry as JSONL: one `{"type":"telemetry",...}` line
    /// per sample.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            for s in &fam.samples {
                let _ = write!(
                    out,
                    "{{\"type\":\"telemetry\",\"metric\":\"{}\",\"kind\":\"{}\"",
                    json_escape(&fam.name),
                    fam.kind.as_str()
                );
                out.push_str(",\"labels\":{");
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
                }
                out.push('}');
                match &s.value {
                    Value::Int(v) => {
                        let _ = write!(out, ",\"value\":{v}");
                    }
                    Value::Float(v) => {
                        let _ = write!(out, ",\"value\":{}", float_value(*v));
                    }
                    Value::Hist(h) => {
                        let _ = write!(
                            out,
                            ",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                            h.count, h.total_us, h.max_us
                        );
                        for (i, b) in h.buckets.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{b}");
                        }
                        out.push(']');
                    }
                }
                out.push_str("}\n");
            }
        }
        out
    }
}

fn render_openmetrics_hist(
    out: &mut String,
    fam: &Family,
    labels: &[(String, String)],
    h: &LatencyHistogram,
) {
    let mut cumulative = 0u64;
    for i in 0..HIST_BUCKETS {
        cumulative += h.buckets[i];
        let le = match bucket_upper_bound(i) {
            Some(bound) => bound.to_string(),
            None => "+Inf".to_string(),
        };
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            fam.name,
            label_set(labels, Some(("le", &le)))
        );
    }
    let _ = writeln!(out, "{}_sum{} {}", fam.name, label_set(labels, None), h.total_us);
    let _ = writeln!(out, "{}_count{} {}", fam.name, label_set(labels, None), h.count);
}

fn label_set(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Plain `{}` for floats renders the shortest roundtrip form, but
/// OpenMetrics consumers expect a decimal point or exponent on gauges;
/// integers-as-floats therefore get an explicit `.0`.
fn float_value(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_as_openmetrics() {
        let mut reg = TelemetryRegistry::new();
        reg.push_counter("skrt_tests_executed", "Tests executed.", &[], 42);
        reg.push_counter("skrt_verdicts", "Verdicts by class.", &[("class", "pass")], 40);
        reg.push_counter("skrt_verdicts", "Verdicts by class.", &[("class", "abort")], 2);
        reg.push_gauge("skrt_tests_per_sec", "Throughput.", &[], 1234.5);
        let text = reg.render_openmetrics();
        assert!(text.contains("# TYPE skrt_tests_executed counter\n"));
        assert!(text.contains("skrt_tests_executed_total 42\n"));
        assert!(text.contains("skrt_verdicts_total{class=\"pass\"} 40\n"));
        assert!(text.contains("skrt_verdicts_total{class=\"abort\"} 2\n"));
        assert!(text.contains("# TYPE skrt_tests_per_sec gauge\n"));
        assert!(text.contains("skrt_tests_per_sec 1234.5\n"));
        assert!(text.ends_with("# EOF\n"));
        // The two verdict samples share one family header.
        assert_eq!(text.matches("# TYPE skrt_verdicts counter").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_log2_bounds() {
        let mut h = LatencyHistogram::default();
        h.observe(0); // bucket 0, le="0"
        h.observe(1); // bucket 1, le="1"
        h.observe(3); // bucket 2, le="3"
        h.observe(100_000); // overflow bucket, le="+Inf"
        let mut reg = TelemetryRegistry::new();
        reg.push_histogram("skrt_latency_us", "Latency.", &[("hypercall", "set_timer")], &h);
        let text = reg.render_openmetrics();
        assert!(text.contains("# TYPE skrt_latency_us histogram\n"));
        assert!(text.contains("skrt_latency_us_bucket{hypercall=\"set_timer\",le=\"0\"} 1\n"));
        assert!(text.contains("skrt_latency_us_bucket{hypercall=\"set_timer\",le=\"1\"} 2\n"));
        assert!(text.contains("skrt_latency_us_bucket{hypercall=\"set_timer\",le=\"3\"} 3\n"));
        assert!(text.contains("skrt_latency_us_bucket{hypercall=\"set_timer\",le=\"16383\"} 3\n"));
        assert!(text.contains("skrt_latency_us_bucket{hypercall=\"set_timer\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("skrt_latency_us_sum{hypercall=\"set_timer\"} 100004\n"));
        assert!(text.contains("skrt_latency_us_count{hypercall=\"set_timer\"} 4\n"));
    }

    #[test]
    fn bucket_upper_bounds_match_observe_boundaries() {
        // Every bucket's inclusive upper bound must land in that bucket,
        // and bound+1 in the next — the le edges and the observe()
        // bucketing must agree exactly.
        for i in 0..HIST_BUCKETS - 1 {
            let bound = bucket_upper_bound(i).unwrap();
            let mut h = LatencyHistogram::default();
            h.observe(bound);
            assert_eq!(h.buckets[i], 1, "upper bound {bound} must land in bucket {i}");
            let mut h2 = LatencyHistogram::default();
            h2.observe(bound + 1);
            assert_eq!(h2.buckets[i + 1], 1, "bound+1 {} must land in bucket {}", bound + 1, i + 1);
        }
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), None, "last bucket is +Inf");
    }

    #[test]
    fn jsonl_snapshot_has_one_line_per_sample() {
        let mut h = LatencyHistogram::default();
        h.observe(7);
        let mut reg = TelemetryRegistry::new();
        reg.push_counter("skrt_steals", "Stolen runs.", &[], 3);
        reg.push_histogram("skrt_phase_us", "Phase timer.", &[("phase", "rewind")], &h);
        let jsonl = reg.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"metric\":\"skrt_steals\""));
        assert!(lines[0].contains("\"value\":3"));
        assert!(lines[1].contains("\"kind\":\"histogram\""));
        assert!(lines[1].contains("\"labels\":{\"phase\":\"rewind\"}"));
        assert!(lines[1].contains("\"count\":1,\"sum\":7,\"max\":7"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut reg = TelemetryRegistry::new();
        reg.push_counter("m", "h", &[("k", "a\"b\\c")], 1);
        let text = reg.render_openmetrics();
        assert!(text.contains("m_total{k=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("skrt_tests"));
        assert!(valid_metric_name("_x:y9"));
        assert!(!valid_metric_name("9skrt"));
        assert!(!valid_metric_name("skrt-tests"));
        assert!(!valid_metric_name(""));
        assert!(valid_label_name("class"));
        assert!(!valid_label_name("le-x"));
    }
}
