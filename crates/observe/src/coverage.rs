//! Coverage hashing over drained flight-recorder streams.
//!
//! The greybox fuzzer (`skrt::fuzz`) needs a cheap, deterministic
//! projection of "what happened" during one sequence execution. This
//! module turns the flight-recorder event stream (plus per-frame state
//! digest hashes supplied by the caller) into AFL-style edge coverage:
//! consecutive stream tokens are hashed pairwise into a fixed-size map
//! of hit counters, the counters are bucketed into coarse ranges, and a
//! sequence is *coverage-novel* when it drives any map cell to a bucket
//! never seen before.
//!
//! Only *behavioural* events feed coverage. Executor bookkeeping
//! ([`EventKind::TestBegin`], [`EventKind::TestEnd`],
//! [`EventKind::SnapshotClone`], [`EventKind::MemoHit`]) and raw machine
//! noise ([`EventKind::TimerExpiry`], [`EventKind::IrqRaised`]) are
//! excluded, so a memoized replay — which records executor events but
//! executes nothing — can never register novel coverage.

use crate::{Event, EventKind};

/// Number of cells in the coverage map. Power of two so cell selection
/// is a mask. 16k cells ≈ 16 KiB of hit counters per map: small enough
/// to clone freely, large enough that the ~70-entry alphabet × results
/// × scheduler contexts collides rarely.
pub const MAP_SIZE: usize = 1 << 14;

const MASK: u64 = (MAP_SIZE - 1) as u64;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// AFL-style hit-count bucketing: exact small counts, then coarse
/// power-of-two ranges. Distinguishes "once" from "a few" from "many"
/// without making every loop iteration count a distinct coverage point.
#[inline]
pub fn bucket(count: u32) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 3,
        4..=7 => 4,
        8..=15 => 5,
        16..=31 => 6,
        32..=127 => 7,
        _ => 8,
    }
}

/// Map a flight-recorder event to a coverage stream token, or `None`
/// for kinds that must never influence coverage.
#[inline]
pub fn event_token(e: &Event) -> Option<u64> {
    let tag: u64 = match e.kind {
        // Behavioural signal: what the kernel did.
        EventKind::HypercallEnter => 1,
        EventKind::HypercallExit => 2,
        EventKind::HmEvent => 3,
        EventKind::SlotBegin => 4,
        EventKind::SlotEnd => 5,
        EventKind::SystemReset => 6,
        EventKind::KernelHalt => 7,
        EventKind::SimCrashed => 8,
        EventKind::UartPanic => 9,
        EventKind::Ops => 10,
        // Executor bookkeeping and raw machine noise: excluded. Memo
        // hits in particular must not look coverage-novel, and timer /
        // IRQ storms would otherwise drown the semantic stream.
        EventKind::TestBegin
        | EventKind::TestEnd
        | EventKind::SnapshotClone
        | EventKind::MemoHit
        | EventKind::TimerExpiry
        | EventKind::IrqRaised => return None,
        // Isolation-audit tokens introduced for the small-scope checker:
        // excluded so existing coverage streams (and the greybox corpus
        // built on them) are unchanged — the semantic signal they carry
        // is already present as HypercallEnter/HmEvent tokens.
        EventKind::VtimerExpiry | EventKind::PortCreated => return None,
    };
    // Fold the discriminating payload, not the timestamp: coverage must
    // be a function of behaviour, not of when it happened.
    let payload = (e.code as u64) ^ e.a.rotate_left(17) ^ ((e.partition as u64) << 48);
    Some(mix(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ payload))
}

/// Per-execution coverage extraction scratch. Reused across executions
/// (one per worker): `begin` resets only the touched cells, so the cost
/// per execution is proportional to the trace, not to [`MAP_SIZE`].
pub struct EdgeTrace {
    counts: Vec<u32>,
    touched: Vec<u16>,
    prev: u64,
    sig: u64,
}

impl Default for EdgeTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeTrace {
    pub fn new() -> Self {
        EdgeTrace { counts: vec![0; MAP_SIZE], touched: Vec::new(), prev: 0, sig: FNV_OFFSET }
    }

    /// Start a fresh execution window.
    pub fn begin(&mut self) {
        for &cell in &self.touched {
            self.counts[cell as usize] = 0;
        }
        self.touched.clear();
        self.prev = 0;
        self.sig = FNV_OFFSET;
    }

    /// Fold one stream token: bump the edge cell formed with the
    /// previous token and extend the stream signature.
    #[inline]
    pub fn observe_token(&mut self, token: u64) {
        self.sig = fnv_step(self.sig, token);
        let cell = ((self.prev ^ token) & MASK) as u16;
        if self.counts[cell as usize] == 0 {
            self.touched.push(cell);
        }
        self.counts[cell as usize] = self.counts[cell as usize].saturating_add(1);
        // Shifted, not raw: A→B and B→A hash to different edges.
        self.prev = token >> 1;
    }

    /// Fold a recorded event (no-op for non-coverage kinds).
    #[inline]
    pub fn observe_event(&mut self, e: &Event) {
        if let Some(token) = event_token(e) {
            self.observe_token(token);
        }
    }

    /// Finish the window: the bucketed touched-cell list (sorted by
    /// cell, so it is a canonical value) and the stream signature.
    pub fn finish(&mut self) -> ExecCoverage {
        let mut cells: Vec<(u16, u8)> =
            self.touched.iter().map(|&c| (c, bucket(self.counts[c as usize]))).collect();
        cells.sort_unstable();
        ExecCoverage { cells, signature: self.sig }
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

#[inline]
fn fnv_step(h: u64, word: u64) -> u64 {
    let mut h = h;
    for shift in [0u32, 16, 32, 48] {
        h = (h ^ ((word >> shift) & 0xFFFF)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Canonical coverage of one execution: the bucketed cells it touched
/// (sorted) and a full-stream signature for byte-replay checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecCoverage {
    /// `(cell index, hit bucket)` pairs, sorted by cell index.
    pub cells: Vec<(u16, u8)>,
    /// Order-sensitive hash of every coverage token in the stream.
    pub signature: u64,
}

/// Global coverage map: for each cell, a bitmask of hit buckets ever
/// observed. A `(cell, bucket)` observation is novel when its bit was
/// clear. Folding is sequential (fuzzer main thread), so plain bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct CoverageMap {
    // 16-bit bucket mask per cell; kept out of Debug output by the
    // manual impl below (16k cells of noise otherwise).
    seen: Vec<u16>,
    filled: usize,
    // Executions that touched each cell, saturating. Introspection
    // only — novelty never reads this.
    touches: Vec<u32>,
}

impl Default for CoverageMap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoverageMap").field("filled", &self.filled).finish_non_exhaustive()
    }
}

impl CoverageMap {
    pub fn new() -> Self {
        CoverageMap { seen: vec![0; MAP_SIZE], filled: 0, touches: vec![0; MAP_SIZE] }
    }

    /// Fold one execution's coverage in; returns how many `(cell,
    /// bucket)` observations were novel (0 = nothing new).
    pub fn observe(&mut self, cov: &ExecCoverage) -> usize {
        let mut novel = 0;
        for &(cell, bucket) in &cov.cells {
            self.touches[cell as usize] = self.touches[cell as usize].saturating_add(1);
            let slot = &mut self.seen[cell as usize];
            let bit = 1u16 << bucket;
            if *slot & bit == 0 {
                if *slot == 0 {
                    self.filled += 1;
                }
                *slot |= bit;
                novel += 1;
            }
        }
        novel
    }

    /// The `n` most-touched cells as `(cell, executions-that-hit-it)`,
    /// hottest first; ties break toward the lower cell index so the
    /// result is a canonical value.
    pub fn hottest(&self, n: usize) -> Vec<(u16, u32)> {
        let mut cells: Vec<(u16, u32)> = self
            .touches
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t > 0)
            .map(|(c, &t)| (c as u16, t))
            .collect();
        cells.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        cells.truncate(n);
        cells
    }

    /// Would `cov` be novel, without folding it in?
    pub fn is_novel(&self, cov: &ExecCoverage) -> bool {
        cov.cells.iter().any(|&(cell, bucket)| self.seen[cell as usize] & (1 << bucket) == 0)
    }

    /// Number of cells hit at least once.
    pub fn fill(&self) -> usize {
        self.filled
    }

    /// Fill as a fraction of [`MAP_SIZE`].
    pub fn fill_ratio(&self) -> f64 {
        self.filled as f64 / MAP_SIZE as f64
    }

    /// Deterministic textual rendering: one `cell:bucket-mask` line per
    /// non-empty cell, in cell order. Used by the determinism tests to
    /// compare final maps byte-for-byte across thread counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (cell, &mask) in self.seen.iter().enumerate() {
            if mask != 0 {
                out.push_str(&format!("{cell:04x}:{mask:03x}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_PARTITION;

    fn ev(kind: EventKind, code: u32, a: u64) -> Event {
        Event { t_us: 7, kind, partition: 1, code, a, b: 0 }
    }

    #[test]
    fn executor_events_never_produce_tokens() {
        for kind in [
            EventKind::TestBegin,
            EventKind::TestEnd,
            EventKind::SnapshotClone,
            EventKind::MemoHit,
            EventKind::TimerExpiry,
            EventKind::IrqRaised,
        ] {
            assert_eq!(event_token(&ev(kind, 3, 9)), None, "{kind:?} must be coverage-inert");
        }
        assert!(event_token(&ev(EventKind::HypercallEnter, 3, 9)).is_some());
    }

    #[test]
    fn token_is_timestamp_invariant() {
        let a = Event { t_us: 1, kind: EventKind::HmEvent, partition: 2, code: 5, a: 6, b: 0 };
        let b = Event { t_us: 999, ..a };
        assert_eq!(event_token(&a), event_token(&b));
    }

    #[test]
    fn edge_trace_is_order_sensitive() {
        let mut t = EdgeTrace::new();
        t.begin();
        t.observe_token(10);
        t.observe_token(20);
        let ab = t.finish();
        t.begin();
        t.observe_token(20);
        t.observe_token(10);
        let ba = t.finish();
        assert_ne!(ab.signature, ba.signature);
        assert_ne!(ab.cells, ba.cells);
    }

    #[test]
    fn edge_trace_scratch_resets_between_windows() {
        let mut t = EdgeTrace::new();
        t.begin();
        t.observe_token(10);
        t.observe_token(20);
        let first = t.finish();
        t.begin();
        t.observe_token(10);
        t.observe_token(20);
        assert_eq!(t.finish(), first, "reused scratch must not leak between windows");
    }

    #[test]
    fn hit_count_buckets_are_monotone_and_coarse() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(4), bucket(7));
        assert!(bucket(16) > bucket(8));
        assert_eq!(bucket(1000), bucket(u32::MAX));
    }

    #[test]
    fn map_novelty_and_fill() {
        let mut map = CoverageMap::new();
        let mut t = EdgeTrace::new();
        t.begin();
        t.observe_token(10);
        t.observe_token(20);
        let cov = t.finish();
        assert!(map.is_novel(&cov));
        let novel = map.observe(&cov);
        assert_eq!(novel, cov.cells.len());
        assert_eq!(map.fill(), cov.cells.len());
        assert!(!map.is_novel(&cov), "identical coverage is not novel twice");
        assert_eq!(map.observe(&cov), 0);

        // Same cells at a higher hit bucket ARE novel.
        t.begin();
        for _ in 0..8 {
            t.observe_token(10);
            t.observe_token(20);
        }
        let hot = t.finish();
        assert!(map.is_novel(&hot));
        assert!(map.observe(&hot) > 0);
        assert_eq!(map.fill(), cov.cells.len() + 1, "repeat edge 10->10 adds one cell");
    }

    #[test]
    fn hottest_counts_executions_and_breaks_ties_by_cell() {
        let mut map = CoverageMap::new();
        let mut t = EdgeTrace::new();
        // Edge 10->20 touched by three executions, 30->40 by one.
        for _ in 0..3 {
            t.begin();
            t.observe_token(10);
            t.observe_token(20);
            map.observe(&t.finish());
        }
        t.begin();
        t.observe_token(30);
        t.observe_token(40);
        map.observe(&t.finish());
        let hot = map.hottest(16);
        assert!(!hot.is_empty());
        assert_eq!(hot[0].1, 3, "hottest cell was touched by all three executions");
        for pair in hot.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "hottest() must be sorted by touches desc, cell asc"
            );
        }
        assert_eq!(map.hottest(1).len(), 1);
    }

    #[test]
    fn map_render_is_deterministic_and_sorted() {
        let mut map = CoverageMap::new();
        let mut t = EdgeTrace::new();
        t.begin();
        for tok in [90u64, 80, 70, 60] {
            t.observe_token(tok);
        }
        map.observe(&t.finish());
        let r = map.render();
        assert_eq!(r, map.clone().render());
        let cells: Vec<&str> = r.lines().map(|l| l.split(':').next().unwrap()).collect();
        let mut sorted = cells.clone();
        sorted.sort();
        assert_eq!(cells, sorted);
    }

    #[test]
    fn real_event_stream_roundtrip() {
        let mut t = EdgeTrace::new();
        t.begin();
        t.observe_event(&ev(EventKind::HypercallEnter, 1, 0));
        t.observe_event(&ev(EventKind::MemoHit, 0, 0)); // inert
        t.observe_event(&ev(EventKind::HypercallExit, 1, crate::encode_return(0)));
        t.observe_event(&Event {
            t_us: 3,
            kind: EventKind::SlotBegin,
            partition: NO_PARTITION,
            code: 0,
            a: 0,
            b: 0,
        });
        let cov = t.finish();
        assert_eq!(cov.cells.len(), 3, "three tokens, three first-seen edges");
    }
}
