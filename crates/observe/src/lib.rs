//! Flight recorder for the simulated kernel stack.
//!
//! Every execution layer — the LEON3 machine, the XtratuM kernel, the
//! campaign executor — records fixed-size [`Event`]s into a preallocated
//! per-thread ring buffer. Recording is off by default and costs one
//! branch on a thread-local flag; no allocation ever happens on the
//! record path, so the PR 2 allocation budget is unaffected.
//!
//! The drained event stream feeds four consumers: per-hypercall latency
//! histograms ([`histogram`]), a Chrome/Perfetto trace exporter
//! ([`perfetto`]), the `skrt-repro triage` timeline dump, and the
//! greybox fuzzer's coverage hashing ([`coverage`]).

pub mod coverage;
pub mod histogram;
pub mod perfetto;
mod ring;
pub mod telemetry;

pub use coverage::{CoverageMap, EdgeTrace, ExecCoverage, MAP_SIZE};
pub use histogram::{HistogramSet, LatencyHistogram, HIST_BUCKETS};
pub use perfetto::ChromeTraceWriter;
pub use ring::Ring;
pub use telemetry::TelemetryRegistry;

use std::cell::{Cell, RefCell};

/// Partition field value for events not attributable to a partition.
pub const NO_PARTITION: u16 = u16::MAX;

/// What happened. Kept to a closed set of cheap discriminants; the
/// `code`/`a`/`b` payload words carry the per-kind detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// LEON3: a GPT/vtimer unit expired. `code` = timer unit, `a` = IRQ line.
    TimerExpiry,
    /// LEON3: IRQMP raised an interrupt line. `code` = IRQ line.
    IrqRaised,
    /// LEON3: the UART carried a panic banner. Timeless (uses last timestamp).
    UartPanic,
    /// LEON3: the simulator itself crashed (IRQ storm, …).
    SimCrashed,
    /// XtratuM: hypercall dispatch began. `code` = hypercall nr,
    /// `a`/`b` = first two raw argument words.
    HypercallEnter,
    /// XtratuM: hypercall dispatch finished. `code` = hypercall nr,
    /// `a` = encoded result ([`encode_return`]/[`encode_no_return`]),
    /// `b` = modelled cost in µs.
    HypercallExit,
    /// XtratuM scheduler: a plan slot started. `code` = slot index.
    SlotBegin,
    /// XtratuM scheduler: a plan slot ended. `code` = slot index.
    SlotEnd,
    /// XtratuM health monitor consumed an event. `code` = HM action code,
    /// `a` = HM event class code.
    HmEvent,
    /// XtratuM nominal-ops journal entry. `code` = ops event code.
    Ops,
    /// XtratuM: a system reset was performed. `code` = 0 cold / 1 warm.
    SystemReset,
    /// XtratuM: the kernel halted. `code` = 0 halt call / 1 HM fatal.
    KernelHalt,
    /// Executor: a test case started. `code` = campaign case index.
    TestBegin,
    /// Executor: a test case finished. `code` = classification index. Timeless.
    TestEnd,
    /// Executor: the boot snapshot was cloned for this test. Timeless.
    SnapshotClone,
    /// Executor: the result memo served this test. Timeless.
    MemoHit,
    /// XtratuM: a virtual-timer expiry was delivered (the owning
    /// partition's timer VIRQ was set). `code` = 0 HW-clock vtimer /
    /// 1 exec-clock timer, `a` = expirations delivered. The isolation
    /// checker audits that every delivery is attributed to the partition
    /// that armed the timer.
    VtimerExpiry,
    /// XtratuM: a port was created. `code` = descriptor, `a` = direction
    /// (0 source / 1 destination), `b` = kind (0 sampling / 1 queuing).
    /// Timeless (recorded inside hypercall dispatch). The isolation
    /// checker audits that port visibility never crosses partitions
    /// beyond the configured channels.
    PortCreated,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::TimerExpiry => "timer_expiry",
            EventKind::IrqRaised => "irq_raised",
            EventKind::UartPanic => "uart_panic",
            EventKind::SimCrashed => "sim_crashed",
            EventKind::HypercallEnter => "hypercall_enter",
            EventKind::HypercallExit => "hypercall_exit",
            EventKind::SlotBegin => "slot_begin",
            EventKind::SlotEnd => "slot_end",
            EventKind::HmEvent => "hm_event",
            EventKind::Ops => "ops",
            EventKind::SystemReset => "system_reset",
            EventKind::KernelHalt => "kernel_halt",
            EventKind::TestBegin => "test_begin",
            EventKind::TestEnd => "test_end",
            EventKind::SnapshotClone => "snapshot_clone",
            EventKind::MemoHit => "memo_hit",
            EventKind::VtimerExpiry => "vtimer_expiry",
            EventKind::PortCreated => "port_created",
        }
    }
}

/// One fixed-size flight-recorder record. `Copy`, no heap anywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated time in µs, clamped monotone within one recording window.
    pub t_us: u64,
    pub kind: EventKind,
    /// Partition id, or [`NO_PARTITION`].
    pub partition: u16,
    /// Per-kind discriminant payload (hypercall nr, slot index, …).
    pub code: u32,
    pub a: u64,
    pub b: u64,
}

/// Everything drained from one recording window (typically one test).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DrainedFlight {
    /// Events in chronological order (oldest first).
    pub events: Vec<Event>,
    /// Events overwritten because the ring wrapped.
    pub dropped: u64,
}

// One thread-local struct, not two variables: every record resolves the
// TLS address once and reaches both the gate and the ring through it.
struct Recorder {
    active: Cell<bool>,
    ring: RefCell<Option<Ring>>,
}

thread_local! {
    static REC: Recorder = const {
        Recorder { active: Cell::new(false), ring: RefCell::new(None) }
    };
}

/// Is the recorder enabled on this thread? This is the one branch the
/// disabled path pays.
#[inline]
pub fn active() -> bool {
    REC.with(|r| r.active.get())
}

/// Enable recording on this thread with a ring of `capacity` events.
/// The ring is allocated here, once; the record path never allocates.
pub fn enable(capacity: usize) {
    REC.with(|r| {
        *r.ring.borrow_mut() = Some(Ring::new(capacity));
        r.active.set(true);
    });
}

/// Disable recording on this thread and free the ring.
pub fn disable() {
    REC.with(|r| {
        r.active.set(false);
        *r.ring.borrow_mut() = None;
    });
}

/// Record one event. No-op (one branch) when the recorder is disabled.
#[inline]
pub fn record(t_us: u64, kind: EventKind, partition: u16, code: u32, a: u64, b: u64) {
    REC.with(|r| {
        if r.active.get() {
            push_event(r, Event { t_us, kind, partition, code, a, b });
        }
    });
}

/// Record an event from a context with no clock access: it inherits the
/// timestamp of the most recent event in the ring.
#[inline]
pub fn record_timeless(kind: EventKind, partition: u16, code: u32, a: u64, b: u64) {
    REC.with(|r| {
        if r.active.get() {
            push_timeless(r, kind, partition, code, a, b);
        }
    });
}

// Outlined so the disabled fast path is just a branch over a call, but
// deliberately not `#[cold]`: when recording is on this runs for every
// event, and cold-section placement would tax the enabled path.
#[inline(never)]
fn push_event(r: &Recorder, e: Event) {
    if let Some(ring) = r.ring.borrow_mut().as_mut() {
        ring.push(e);
    }
}

#[inline(never)]
fn push_timeless(r: &Recorder, kind: EventKind, partition: u16, code: u32, a: u64, b: u64) {
    if let Some(ring) = r.ring.borrow_mut().as_mut() {
        let t = ring.last_timestamp();
        ring.push(Event { t_us: t, kind, partition, code, a, b });
    }
}

/// Drain all recorded events on this thread and reset the window (the
/// monotone clamp restarts at 0). Recording stays enabled.
pub fn drain() -> DrainedFlight {
    REC.with(|r| match r.ring.borrow_mut().as_mut() {
        Some(ring) => ring.drain(),
        None => DrainedFlight::default(),
    })
}

/// Bit set in `HypercallExit.a` when the call did not return.
pub const NO_RETURN_FLAG: u64 = 1 << 32;

/// Encode a returned hypercall code into the `HypercallExit.a` payload.
#[inline]
pub fn encode_return(code: i32) -> u64 {
    code as u32 as u64
}

/// Encode a no-return outcome code into the `HypercallExit.a` payload.
#[inline]
pub fn encode_no_return(kind_code: u32) -> u64 {
    NO_RETURN_FLAG | kind_code as u64
}

/// Decoded `HypercallExit.a` payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitResult {
    Returned(i32),
    NoReturn(u32),
}

#[inline]
pub fn decode_result(a: u64) -> ExitResult {
    if a & NO_RETURN_FLAG != 0 {
        ExitResult::NoReturn(a as u32)
    } else {
        ExitResult::Returned(a as u32 as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event { t_us: t, kind: EventKind::Ops, partition: 3, code: 7, a: 1, b: 2 }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        disable();
        record(10, EventKind::Ops, 0, 0, 0, 0);
        assert!(!active());
        assert_eq!(drain(), DrainedFlight::default());
    }

    #[test]
    fn enable_record_drain_roundtrip() {
        enable(8);
        record(5, EventKind::TestBegin, NO_PARTITION, 42, 0, 0);
        record(9, EventKind::Ops, 1, 2, 3, 4);
        record_timeless(EventKind::TestEnd, NO_PARTITION, 0, 0, 0);
        let f = drain();
        assert_eq!(f.dropped, 0);
        assert_eq!(f.events.len(), 3);
        assert_eq!(f.events[0].kind, EventKind::TestBegin);
        assert_eq!(f.events[2].t_us, 9, "timeless event inherits last timestamp");
        disable();
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut ring = Ring::new(4);
        for t in 0..10u64 {
            ring.push(ev(t));
        }
        let f = ring.drain();
        assert_eq!(f.dropped, 6);
        assert_eq!(f.events.iter().map(|e| e.t_us).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn timestamps_are_clamped_monotone_and_reset_on_drain() {
        let mut ring = Ring::new(8);
        ring.push(ev(50));
        ring.push(ev(20)); // goes backwards: clamped to 50
        let f = ring.drain();
        assert_eq!(f.events[1].t_us, 50);
        ring.push(ev(5)); // new window: low timestamps fine again
        assert_eq!(ring.drain().events[0].t_us, 5);
    }

    #[test]
    fn result_encoding_roundtrips() {
        assert_eq!(decode_result(encode_return(-22)), ExitResult::Returned(-22));
        assert_eq!(decode_result(encode_return(0)), ExitResult::Returned(0));
        assert_eq!(decode_result(encode_no_return(9)), ExitResult::NoReturn(9));
    }
}
