//! `rtems-lite` — a minimal multitasking runtime in the RTEMS role.
//!
//! "Examples of such OSes supported by XM are the RTOS RTEMS for
//! multi-threaded C applications and the XtratuM Abstraction Layer (XAL)
//! as a single threaded C runtime." (paper, Section IV.A)
//!
//! The real RTEMS is out of scope; this crate provides the closest
//! synthetic equivalent that exercises the same partition-level code
//! paths: **prioritised cooperative tasks** with a classic-API-shaped
//! service set — counting semaphores, bounded message queues, a tick
//! clock with `sleep`, and task lifecycle control — hosted inside an
//! XtratuM partition via [`RtemsGuest`].
//!
//! Tasks are cooperative state machines: each dispatch invokes the task
//! function once with a [`TaskServices`] handle and the task returns a
//! [`Poll`] describing why it stopped (yielded, slept, blocked on a
//! semaphore or queue, or finished). The scheduler always dispatches the
//! highest-priority ready task, exactly like RTEMS' priority-based
//! preemptive scheduler observed at dispatch points.

pub mod runtime;
pub mod services;

pub use runtime::{Poll, RtemsGuest, RtemsRuntime, TaskId, TaskState};
pub use services::{QueueId, SemId, TaskServices};
