//! The task scheduler and the XtratuM guest adapter.

use crate::services::{MsgQueue, QueueId, SemId, Semaphore, Shared, TaskServices};
use xtratum::guest::{GuestProgram, PartitionApi};

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// Why a task stopped executing at this dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Poll {
    /// Ready again immediately (round-robin among equal priorities).
    Yield,
    /// Sleep for this many ticks.
    Sleep(u64),
    /// Block until the semaphore can be obtained (the runtime obtains it
    /// on the task's behalf before the next dispatch).
    WaitSem(SemId),
    /// Block until the queue has a message.
    WaitQueue(QueueId),
    /// The task is finished (dormant).
    Done,
}

/// Task lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Eligible to run.
    Ready,
    /// Asleep until the given tick.
    Sleeping(u64),
    /// Blocked obtaining a semaphore.
    BlockedSem(SemId),
    /// Blocked receiving from a queue.
    BlockedQueue(QueueId),
    /// Finished.
    Dormant,
}

type TaskFn = Box<dyn FnMut(&mut TaskServices<'_, '_, '_>) -> Poll + Send>;

struct Task {
    name: String,
    priority: u8, // 0 = highest, as in RTEMS
    state: TaskState,
    entry: TaskFn,
    dispatches: u64,
    /// Global dispatch sequence number of this task's last run (drives
    /// round-robin fairness within a priority level).
    last_seq: u64,
}

/// The runtime: task table + shared objects.
///
/// ```
/// use rtems_lite::{Poll, RtemsRuntime, TaskState};
///
/// let mut rt = RtemsRuntime::new(1_000); // 1 ms ticks
/// let sem = rt.create_semaphore(1);
/// let q = rt.create_queue(4);
/// let worker = rt.spawn("worker", 2, move |svc| {
///     if svc.sem_try_obtain(sem) {
///         svc.queue_try_send(q, vec![1, 2, 3]);
///         Poll::Done
///     } else {
///         Poll::WaitSem(sem)
///     }
/// });
/// assert_eq!(rt.task_state(worker), Some(TaskState::Ready));
/// assert_eq!(rt.task_name(worker), Some("worker"));
/// ```
pub struct RtemsRuntime {
    tasks: Vec<Task>,
    shared: Shared,
    tick_us: u64,
    /// Execution time charged per dispatch (µs).
    pub dispatch_cost_us: u64,
    /// Upper bound on dispatches per scheduling slot (keeps cooperative
    /// livelock from consuming the whole slot).
    pub max_dispatches_per_slot: u32,
}

impl RtemsRuntime {
    /// Creates a runtime with the given clock-tick length.
    pub fn new(tick_us: u64) -> Self {
        assert!(tick_us > 0, "tick length must be positive");
        RtemsRuntime {
            tasks: Vec::new(),
            shared: Shared::default(),
            tick_us,
            dispatch_cost_us: 50,
            max_dispatches_per_slot: 256,
        }
    }

    /// Creates a task (`rtems_task_create` + `rtems_task_start`).
    /// Priority 0 is highest.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        priority: u8,
        entry: impl FnMut(&mut TaskServices<'_, '_, '_>) -> Poll + Send + 'static,
    ) -> TaskId {
        self.tasks.push(Task {
            name: name.into(),
            priority,
            state: TaskState::Ready,
            entry: Box::new(entry),
            dispatches: 0,
            last_seq: 0,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Creates a counting semaphore (`rtems_semaphore_create`).
    pub fn create_semaphore(&mut self, initial: u32) -> SemId {
        self.shared.sems.push(Semaphore { count: initial });
        SemId(self.shared.sems.len() - 1)
    }

    /// Creates a bounded message queue (`rtems_message_queue_create`).
    pub fn create_queue(&mut self, capacity: usize) -> QueueId {
        self.shared.queues.push(MsgQueue { capacity, messages: Default::default() });
        QueueId(self.shared.queues.len() - 1)
    }

    /// Task state (diagnostics).
    pub fn task_state(&self, id: TaskId) -> Option<TaskState> {
        self.tasks.get(id.0).map(|t| t.state)
    }

    /// Task name.
    pub fn task_name(&self, id: TaskId) -> Option<&str> {
        self.tasks.get(id.0).map(|t| t.name.as_str())
    }

    /// Dispatch count (diagnostics).
    pub fn task_dispatches(&self, id: TaskId) -> Option<u64> {
        self.tasks.get(id.0).map(|t| t.dispatches)
    }

    /// Current tick.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks
    }

    /// Advances the tick clock, waking sleepers whose deadline passed.
    fn advance_ticks(&mut self, new_ticks: u64) {
        self.shared.ticks = new_ticks;
        for t in &mut self.tasks {
            if let TaskState::Sleeping(deadline) = t.state {
                if deadline <= new_ticks {
                    t.state = TaskState::Ready;
                }
            }
        }
    }

    /// Re-evaluates blocked tasks against the shared objects: semaphore
    /// waiters obtain (one per available count, highest priority first);
    /// queue waiters become ready when a message is available.
    fn unblock(&mut self) {
        // Highest priority first, stable within priority.
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        order.sort_by_key(|&i| self.tasks[i].priority);
        for i in order {
            match self.tasks[i].state {
                TaskState::BlockedSem(sem) => {
                    if let Some(s) = self.shared.sems.get_mut(sem.0) {
                        if s.count > 0 {
                            s.count -= 1;
                            self.tasks[i].state = TaskState::Ready;
                        }
                    }
                }
                TaskState::BlockedQueue(q) => {
                    let has_msg = self
                        .shared
                        .queues
                        .get(q.0)
                        .map(|q| !q.messages.is_empty())
                        .unwrap_or(false);
                    if has_msg {
                        self.tasks[i].state = TaskState::Ready;
                    }
                }
                _ => {}
            }
        }
    }

    fn next_ready(&self) -> Option<usize> {
        // Highest priority wins; within a priority level the least
        // recently dispatched task runs first (round-robin).
        (0..self.tasks.len())
            .filter(|&i| self.tasks[i].state == TaskState::Ready)
            .min_by_key(|&i| (self.tasks[i].priority, self.tasks[i].last_seq, i))
    }

    /// Runs the dispatcher for one scheduling slot.
    fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
        // The tick clock follows wall time.
        let wall_ticks = |api: &PartitionApi<'_>, tick_us: u64| api.now_us() / tick_us;
        self.advance_ticks(wall_ticks(api, self.tick_us).max(self.shared.ticks));
        let mut seq = self.tasks.iter().map(|t| t.last_seq).max().unwrap_or(0);
        for _ in 0..self.max_dispatches_per_slot {
            if api.ended().is_some() || api.remaining_us() <= self.dispatch_cost_us {
                break;
            }
            self.unblock();
            let Some(idx) = self.next_ready() else { break };
            seq += 1;
            self.tasks[idx].last_seq = seq;

            api.consume(self.dispatch_cost_us);
            let poll = {
                let mut svc = TaskServices {
                    shared: &mut self.shared,
                    api,
                    _marker: std::marker::PhantomData,
                };
                (self.tasks[idx].entry)(&mut svc)
            };
            self.tasks[idx].dispatches += 1;
            self.tasks[idx].state = match poll {
                Poll::Yield => TaskState::Ready,
                Poll::Sleep(ticks) => TaskState::Sleeping(self.shared.ticks + ticks.max(1)),
                Poll::WaitSem(s) => TaskState::BlockedSem(s),
                Poll::WaitQueue(q) => TaskState::BlockedQueue(q),
                Poll::Done => TaskState::Dormant,
            };
            // Advance the tick clock with consumed execution time.
            let now = wall_ticks(api, self.tick_us);
            if now > self.shared.ticks {
                self.advance_ticks(now);
            }
        }
    }
}

type InitFn = Box<dyn FnOnce(&mut RtemsRuntime) + Send>;

/// Hosts an [`RtemsRuntime`] inside an XtratuM partition.
pub struct RtemsGuest {
    rt: RtemsRuntime,
    init: Option<InitFn>,
    booted: bool,
}

impl RtemsGuest {
    /// Creates a guest; `init` is called at first boot to create tasks
    /// and objects (the RTEMS initialisation task).
    pub fn new(tick_us: u64, init: impl FnOnce(&mut RtemsRuntime) + Send + 'static) -> Self {
        RtemsGuest { rt: RtemsRuntime::new(tick_us), init: Some(Box::new(init)), booted: false }
    }

    /// The hosted runtime (post-run inspection).
    pub fn runtime(&self) -> &RtemsRuntime {
        &self.rt
    }
}

impl GuestProgram for RtemsGuest {
    fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
        if !self.booted {
            self.booted = true;
            if let Some(init) = self.init.take() {
                init(&mut self.rt);
            }
        }
        self.rt.run_slot(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leon3_sim::addrspace::Perms;
    use std::sync::{Arc, Mutex};
    use xtratum::config::{MemAreaCfg, PartitionCfg, PlanCfg, SlotCfg, XmConfig};
    use xtratum::guest::GuestSet;
    use xtratum::kernel::XmKernel;
    use xtratum::vuln::KernelBuild;

    fn config() -> XmConfig {
        XmConfig {
            partitions: vec![PartitionCfg {
                id: 0,
                name: "MT".into(),
                system: true,
                mem: vec![MemAreaCfg { base: 0x4010_0000, size: 0x1_0000, perms: Perms::RWX }],
            }],
            plans: vec![PlanCfg {
                id: 0,
                major_frame_us: 50_000,
                slots: vec![SlotCfg { partition: 0, start_us: 0, duration_us: 50_000 }],
            }],
            channels: vec![],
            hm_table: XmConfig::default_hm_table(),
            tuning: Default::default(),
        }
    }

    fn run_guest(
        frames: u32,
        init: impl FnOnce(&mut RtemsRuntime) + Send + 'static,
    ) -> (xtratum::observe::RunSummary, Vec<String>) {
        let mut k = XmKernel::boot(config(), KernelBuild::Patched).unwrap();
        let mut guests = GuestSet::idle(1);
        guests.set(0, Box::new(RtemsGuest::new(1_000, init)));
        let s = k.run_major_frames(&mut guests, frames);
        (s, vec![])
    }

    #[test]
    fn priority_scheduling_runs_highest_first() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let (l1, l2) = (log.clone(), log.clone());
        let (s, _) = run_guest(1, move |rt| {
            // spawned low-priority first: must still run *after* high.
            rt.spawn("low", 10, move |_| {
                l1.lock().unwrap().push("low");
                Poll::Done
            });
            rt.spawn("high", 1, move |_| {
                l2.lock().unwrap().push("high");
                Poll::Done
            });
        });
        assert!(s.healthy());
        assert_eq!(*log.lock().unwrap(), vec!["high", "low"]);
    }

    #[test]
    fn yield_round_robins_equal_priorities() {
        let log = Arc::new(Mutex::new(Vec::<u32>::new()));
        for id in 0..2u32 {
            let l = log.clone();
            let _ = (id, &l);
        }
        let l1 = log.clone();
        let l2 = log.clone();
        let (s, _) = run_guest(1, move |rt| {
            let mut n1 = 0;
            rt.spawn("a", 5, move |_| {
                n1 += 1;
                l1.lock().unwrap().push(1);
                if n1 < 3 {
                    Poll::Yield
                } else {
                    Poll::Done
                }
            });
            let mut n2 = 0;
            rt.spawn("b", 5, move |_| {
                n2 += 1;
                l2.lock().unwrap().push(2);
                if n2 < 3 {
                    Poll::Yield
                } else {
                    Poll::Done
                }
            });
        });
        assert!(s.healthy());
        let seq = log.lock().unwrap().clone();
        // Both tasks interleave 1,2,1,2,1,2 (round-robin within priority).
        assert_eq!(seq, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn sleep_wakes_after_the_requested_ticks() {
        let wakes = Arc::new(Mutex::new(Vec::<u64>::new()));
        let w = wakes.clone();
        let (s, _) = run_guest(3, move |rt| {
            let mut phase = 0;
            rt.spawn("sleeper", 1, move |svc| {
                phase += 1;
                if phase == 1 {
                    return Poll::Sleep(5);
                }
                w.lock().unwrap().push(svc.ticks());
                Poll::Done
            });
        });
        assert!(s.healthy());
        let seen = wakes.lock().unwrap().clone();
        assert_eq!(seen.len(), 1);
        assert!(seen[0] >= 5, "woke at tick {}", seen[0]);
    }

    #[test]
    fn semaphore_blocks_and_hands_over_by_priority() {
        let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let (la, lb, lc) = (log.clone(), log.clone(), log.clone());
        let (s, _) = run_guest(2, move |rt| {
            let sem = rt.create_semaphore(0);
            // Two waiters at different priorities...
            let mut got_a = false;
            rt.spawn("waiter-lo", 8, move |_svc| {
                if !got_a {
                    got_a = true;
                    return Poll::WaitSem(sem);
                }
                la.lock().unwrap().push("lo-got-it");
                Poll::Done
            });
            let mut got_b = false;
            rt.spawn("waiter-hi", 2, move |_svc| {
                if !got_b {
                    got_b = true;
                    return Poll::WaitSem(sem);
                }
                lb.lock().unwrap().push("hi-got-it");
                Poll::Done
            });
            // ... and a releaser that posts twice.
            let mut releases = 0;
            rt.spawn("releaser", 9, move |svc| {
                svc.sem_release(sem);
                releases += 1;
                lc.lock().unwrap().push("release");
                if releases < 2 {
                    Poll::Yield
                } else {
                    Poll::Done
                }
            });
        });
        assert!(s.healthy());
        let seq = log.lock().unwrap().clone();
        // The high-priority waiter obtains the first release.
        let hi = seq.iter().position(|&e| e == "hi-got-it").unwrap();
        let lo = seq.iter().position(|&e| e == "lo-got-it").unwrap();
        assert!(hi < lo, "{seq:?}");
    }

    #[test]
    fn producer_consumer_queue_round_trip() {
        let received = Arc::new(Mutex::new(Vec::<Vec<u8>>::new()));
        let r = received.clone();
        let (s, _) = run_guest(2, move |rt| {
            let q = rt.create_queue(4);
            let mut n = 0u32;
            rt.spawn("producer", 5, move |svc| {
                n += 1;
                assert!(svc.queue_try_send(q, n.to_be_bytes().to_vec()));
                if n < 5 {
                    Poll::Yield
                } else {
                    Poll::Done
                }
            });
            rt.spawn("consumer", 4, move |svc| match svc.queue_try_receive(q) {
                Some(msg) => {
                    r.lock().unwrap().push(msg);
                    Poll::Yield
                }
                None => Poll::WaitQueue(q),
            });
        });
        assert!(s.healthy());
        let got = received.lock().unwrap().clone();
        let want: Vec<Vec<u8>> = (1u32..=5).map(|n| n.to_be_bytes().to_vec()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn tasks_can_issue_hypercalls() {
        let seen = Arc::new(Mutex::new(None::<u64>));
        let out = seen.clone();
        let (s, _) = run_guest(1, move |rt| {
            rt.spawn("clock-reader", 1, move |svc| {
                // XM_get_time through the raw partition API.
                let addr = 0x4010_8000u64;
                let r = svc.api.hypercall(&xtratum::hypercall::RawHypercall::new_unchecked(
                    xtratum::hypercall::HypercallId::GetTime,
                    vec![0, addr],
                ));
                assert_eq!(r, Ok(0));
                let t = svc.api.read_bytes(addr as u32, 8).unwrap();
                let mut b = [0u8; 8];
                b.copy_from_slice(&t);
                *out.lock().unwrap() = Some(u64::from_be_bytes(b));
                Poll::Done
            });
        });
        assert!(s.healthy());
        assert!(seen.lock().unwrap().is_some());
    }

    #[test]
    fn dispatch_budget_bounds_livelock() {
        let (s, _) = run_guest(1, |rt| {
            rt.spawn("spinner", 1, |_| Poll::Yield); // never finishes
        });
        // The spinner cannot starve the kernel: the slot ends normally and
        // the partition stays healthy (no overrun).
        assert!(s.healthy());
        assert!(s
            .hm_log
            .iter()
            .all(|e| { !matches!(e.kind, xtratum::hm::HmEventKind::SchedOverrun { .. }) }));
    }

    #[test]
    fn runtime_diagnostics() {
        let mut rt = RtemsRuntime::new(1_000);
        let t = rt.spawn("t", 3, |_| Poll::Done);
        assert_eq!(rt.task_name(t), Some("t"));
        assert_eq!(rt.task_state(t), Some(TaskState::Ready));
        assert_eq!(rt.task_dispatches(t), Some(0));
        assert_eq!(rt.ticks(), 0);
        let s = rt.create_semaphore(2);
        let q = rt.create_queue(1);
        assert_eq!(s, SemId(0));
        assert_eq!(q, QueueId(0));
    }

    #[test]
    #[should_panic(expected = "tick length")]
    fn zero_tick_rejected() {
        let _ = RtemsRuntime::new(0);
    }
}
