//! Shared kernel objects tasks operate on: counting semaphores and
//! bounded message queues, plus the tick clock.

use std::collections::VecDeque;

/// Semaphore identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SemId(pub(crate) usize);

/// Message-queue identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub(crate) usize);

#[derive(Debug)]
pub(crate) struct Semaphore {
    pub count: u32,
}

#[derive(Debug)]
pub(crate) struct MsgQueue {
    pub capacity: usize,
    pub messages: VecDeque<Vec<u8>>,
}

/// Shared object table (semaphores, queues, tick counter).
#[derive(Debug, Default)]
pub(crate) struct Shared {
    pub sems: Vec<Semaphore>,
    pub queues: Vec<MsgQueue>,
    pub ticks: u64,
}

/// The service handle a task receives on every dispatch. All operations
/// are non-blocking; *blocking* is expressed by returning the matching
/// [`crate::Poll`] value from the task function.
pub struct TaskServices<'s, 'a, 'k> {
    pub(crate) shared: &'s mut Shared,
    /// Raw access to the hosting partition (hypercalls, memory, time).
    pub api: &'s mut xtratum::guest::PartitionApi<'k>,
    pub(crate) _marker: std::marker::PhantomData<&'a ()>,
}

impl<'s, 'a, 'k> TaskServices<'s, 'a, 'k> {
    /// Current tick count since partition boot.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks
    }

    /// Attempts to obtain (decrement) a semaphore. Returns `false` if the
    /// count is zero — return [`crate::Poll::WaitSem`] to block instead.
    pub fn sem_try_obtain(&mut self, id: SemId) -> bool {
        match self.shared.sems.get_mut(id.0) {
            Some(s) if s.count > 0 => {
                s.count -= 1;
                true
            }
            _ => false,
        }
    }

    /// Releases (increments) a semaphore, readying one blocked waiter.
    pub fn sem_release(&mut self, id: SemId) {
        if let Some(s) = self.shared.sems.get_mut(id.0) {
            s.count += 1;
        }
    }

    /// Current semaphore count (diagnostics).
    pub fn sem_count(&self, id: SemId) -> Option<u32> {
        self.shared.sems.get(id.0).map(|s| s.count)
    }

    /// Attempts to send on a queue; `false` if full.
    pub fn queue_try_send(&mut self, id: QueueId, msg: Vec<u8>) -> bool {
        match self.shared.queues.get_mut(id.0) {
            Some(q) if q.messages.len() < q.capacity => {
                q.messages.push_back(msg);
                true
            }
            _ => false,
        }
    }

    /// Attempts to receive from a queue; `None` if empty — return
    /// [`crate::Poll::WaitQueue`] to block instead.
    pub fn queue_try_receive(&mut self, id: QueueId) -> Option<Vec<u8>> {
        self.shared.queues.get_mut(id.0).and_then(|q| q.messages.pop_front())
    }

    /// Number of queued messages.
    pub fn queue_len(&self, id: QueueId) -> usize {
        self.shared.queues.get(id.0).map(|q| q.messages.len()).unwrap_or(0)
    }
}
