//! The composed machine with a TSIM-like health model.
//!
//! A real fault-injection campaign distinguishes "the kernel halted" from
//! "the simulator itself died" — the paper's `XM_set_timer(1, 1, 1)` test
//! *crashed TSIM*. [`Machine`] therefore carries a [`SimHealth`] state and
//! detects the condition that killed TSIM: an unbounded flood of timer
//! traps within one scheduling advance.

use crate::addrspace::AddressSpace;
use crate::irqmp::Irqmp;
use crate::timer::GpTimer;
use crate::trap::Trap;
use crate::uart::Uart;
use crate::TimeUs;

/// Simulator health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimHealth {
    /// The simulator is executing normally.
    Running,
    /// The simulator itself has died (distinct from a kernel halt). The
    /// classifier treats this as a Catastrophic outcome.
    Crashed {
        /// Why the simulator died (e.g. "timer trap storm").
        reason: String,
        /// Simulated time of death.
        at: TimeUs,
    },
}

/// Tunables for the machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of GPTIMER units (LEON3 boards typically expose 2).
    pub timer_units: usize,
    /// First IRQ line used by the timer block.
    pub timer_base_irq: u8,
    /// Timer expiries tolerated within a single `advance_to` before the
    /// simulator is considered crashed by trap flood.
    pub trap_storm_threshold: usize,
    /// Maximum retained trap-log entries.
    pub trap_log_limit: usize,
    /// UART capture byte budget.
    pub uart_limit: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            timer_units: 2,
            timer_base_irq: 6,
            trap_storm_threshold: 4096,
            trap_log_limit: 1024,
            uart_limit: 64 * 1024,
        }
    }
}

/// The simulated LEON3 board.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Physical memory and protection contexts.
    pub mem: AddressSpace,
    /// Interrupt controller.
    pub irqmp: Irqmp,
    /// Console.
    pub uart: Uart,
    /// Timer block.
    pub timers: GpTimer,
    now: TimeUs,
    health: SimHealth,
    trap_log: Vec<(TimeUs, Trap)>,
    trap_total: u64,
    cfg: MachineConfig,
    /// Reusable buffer of distinct `(unit, irq)` pairs fired during one
    /// `advance_to_with`; sized once at construction so the hot path never
    /// heap-allocates.
    fired_scratch: Vec<(usize, u8)>,
}

impl Machine {
    /// Builds a machine from a config; memory regions are added by the
    /// kernel's boot code.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            mem: AddressSpace::new(),
            irqmp: Irqmp::new(),
            uart: Uart::new(cfg.uart_limit),
            timers: GpTimer::new(cfg.timer_units, cfg.timer_base_irq),
            now: 0,
            health: SimHealth::Running,
            trap_log: Vec::new(),
            trap_total: 0,
            fired_scratch: Vec::with_capacity(cfg.timer_units),
            cfg,
        }
    }

    /// Current simulated time (µs since power-on).
    pub fn now(&self) -> TimeUs {
        self.now
    }

    /// Simulator health.
    pub fn health(&self) -> &SimHealth {
        &self.health
    }

    /// True while the simulator is alive.
    pub fn is_running(&self) -> bool {
        matches!(self.health, SimHealth::Running)
    }

    /// Kills the simulator (used by trap-storm detection; also callable by
    /// fault-injection hooks that model host-level failures).
    pub fn crash(&mut self, reason: impl Into<String>) {
        if self.is_running() {
            flightrec::record(
                self.now,
                flightrec::EventKind::SimCrashed,
                flightrec::NO_PARTITION,
                0,
                0,
                0,
            );
            self.health = SimHealth::Crashed { reason: reason.into(), at: self.now };
        }
    }

    /// Advances simulated time to `t`, firing timers into the IRQ
    /// controller. Returns the `(unit, irq)` expiry list, empty if the
    /// simulator is dead. A flood of expiries beyond
    /// [`MachineConfig::trap_storm_threshold`] crashes the simulator —
    /// the TSIM behaviour the paper observed for `XM_set_timer(1,1,1)`.
    pub fn advance_to(&mut self, t: TimeUs) -> Vec<(usize, u8)> {
        if !self.is_running() {
            return Vec::new();
        }
        if t <= self.now {
            return Vec::new();
        }
        let fired = self.timers.advance_to(t);
        self.now = t;
        if fired.len() >= self.cfg.trap_storm_threshold {
            self.crash(format!(
                "timer trap storm: {} timer traps in one advance (threshold {})",
                fired.len(),
                self.cfg.trap_storm_threshold
            ));
            return fired;
        }
        if flightrec::active() {
            let mut last = None;
            for &(unit, irq) in &fired {
                if last != Some((unit, irq)) {
                    self.record_expiry(t, unit, irq);
                    last = Some((unit, irq));
                }
            }
        }
        for &(_, irq) in &fired {
            self.irqmp.raise(irq);
        }
        fired
    }

    /// Flight-records one distinct timer expiry and the IRQ it raises.
    fn record_expiry(&self, t: TimeUs, unit: usize, irq: u8) {
        use flightrec::{EventKind, NO_PARTITION};
        flightrec::record(t, EventKind::TimerExpiry, NO_PARTITION, unit as u32, irq as u64, 0);
        flightrec::record(t, EventKind::IrqRaised, NO_PARTITION, irq as u32, unit as u64, 0);
    }

    /// Allocation-free variant of [`Machine::advance_to`]: instead of
    /// materialising every expiry, invokes `sink(unit, irq)` once per
    /// *distinct* `(unit, irq)` pair (in unit order) and returns the total
    /// expiry count. IRQ raising and the kernel-side expiry handling are
    /// both idempotent per pair, and a unit's expiries within one advance
    /// all carry the same IRQ line, so the distinct pairs — at most one
    /// per unit — fully determine the machine state `advance_to` would
    /// have produced, without the per-call `Vec` of (potentially millions
    /// of) individual events. Storm detection still sees the total count.
    pub fn advance_to_with(&mut self, t: TimeUs, sink: &mut dyn FnMut(usize, u8)) -> usize {
        if !self.is_running() || t <= self.now {
            return 0;
        }
        let mut scratch = std::mem::take(&mut self.fired_scratch);
        scratch.clear();
        let mut total = 0usize;
        self.timers.advance_to_with(t, &mut |i, irq, count| {
            total += count as usize;
            // Expiries arrive unit-ordered, so duplicates are adjacent.
            if scratch.last() != Some(&(i, irq)) {
                scratch.push((i, irq));
            }
        });
        self.now = t;
        if total >= self.cfg.trap_storm_threshold {
            self.crash(format!(
                "timer trap storm: {total} timer traps in one advance (threshold {})",
                self.cfg.trap_storm_threshold
            ));
        } else {
            for &(unit, irq) in &scratch {
                self.record_expiry(t, unit, irq);
                self.irqmp.raise(irq);
            }
        }
        // The caller sees fired pairs even on a storm, exactly as the
        // Vec-returning path hands the flood back to the kernel.
        for &(i, irq) in &scratch {
            sink(i, irq);
        }
        self.fired_scratch = scratch;
        total
    }

    /// O(1) fast-path advance for event-free windows: moves the clock to
    /// `t` only when no timer unit is due by then, and reports whether
    /// the advance completed (which includes the trivial `t <= now` and
    /// dead-simulator cases, where a full advance would be a no-op too).
    /// On `false` the machine is untouched and the caller must run the
    /// full [`Machine::advance_to_with`] path. When it succeeds it is
    /// byte-identical to a zero-expiry slow advance: no fires, no
    /// flight-recorder events, no IRQ changes — just the clock.
    pub fn advance_quiescent(&mut self, t: TimeUs) -> bool {
        if !self.is_running() || t <= self.now {
            return true;
        }
        match self.timers.next_expiry() {
            Some(e) if e <= t => false,
            _ => {
                self.now = t;
                true
            }
        }
    }

    /// Advances by a delta.
    pub fn advance(&mut self, dt: TimeUs) -> Vec<(usize, u8)> {
        self.advance_to(self.now + dt)
    }

    /// Records a trap occurrence for later analysis (the HM and the
    /// robustness log analyser read this).
    pub fn record_trap(&mut self, trap: Trap) {
        self.trap_total += 1;
        if self.trap_log.len() < self.cfg.trap_log_limit {
            self.trap_log.push((self.now, trap));
        }
    }

    /// All retained trap records.
    pub fn traps(&self) -> &[(TimeUs, Trap)] {
        &self.trap_log
    }

    /// Total traps recorded (including those beyond the retention limit).
    pub fn trap_total(&self) -> u64 {
        self.trap_total
    }

    /// Restores the whole board to `src`'s state in place. `src` must be
    /// the machine this one was cloned from (or last restored to),
    /// unmodified since — the memory restore copies back only the pages
    /// written after that point (see [`AddressSpace::restore_from`]).
    /// Allocation-free after the first call warms the capacities.
    pub fn restore_from(&mut self, src: &Machine) {
        // Exhaustive destructuring: adding a field without restoring it
        // becomes a compile error, not a silent determinism bug.
        let Machine {
            mem,
            irqmp,
            uart,
            timers,
            now,
            health,
            trap_log,
            trap_total,
            cfg,
            fired_scratch,
        } = self;
        mem.restore_from(&src.mem);
        irqmp.clone_from(&src.irqmp);
        uart.restore_from(&src.uart);
        timers.restore_from(&src.timers);
        *now = src.now;
        health.clone_from(&src.health);
        trap_log.clone_from(&src.trap_log);
        *trap_total = src.trap_total;
        cfg.clone_from(&src.cfg);
        fired_scratch.clone_from(&src.fired_scratch);
    }

    /// Warm reset: clears interrupts, timers, traps, keeps memory and time.
    pub fn warm_reset(&mut self) {
        self.irqmp.clear_all();
        let n = self.timers.len();
        for i in 0..n {
            self.timers.disarm(i);
        }
        self.trap_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrspace::{Owner, Perms, Region};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        m.mem
            .add_region(Region {
                name: "ram".into(),
                base: 0x4000_0000,
                size: 0x1000,
                owner: Owner::Kernel,
                perms: Perms::RW,
            })
            .unwrap();
        m
    }

    #[test]
    fn time_advances_monotonically() {
        let mut m = machine();
        m.advance(100);
        assert_eq!(m.now(), 100);
        assert!(m.advance_to(50).is_empty()); // going backwards is a no-op
        assert_eq!(m.now(), 100);
    }

    #[test]
    fn timer_expiry_raises_irq() {
        let mut m = machine();
        m.irqmp.unmask(6);
        m.timers.arm(0, 250, None);
        m.advance_to(249);
        assert_eq!(m.irqmp.highest_pending(), None);
        let fired = m.advance_to(250);
        assert_eq!(fired, vec![(0, 6)]);
        assert_eq!(m.irqmp.highest_pending(), Some(6));
    }

    #[test]
    fn trap_storm_crashes_simulator() {
        let mut m = machine();
        // 1 µs periodic timer advanced by a whole 250 ms slot → flood.
        m.timers.arm(1, 1, Some(1));
        m.advance_to(250_000);
        match m.health() {
            SimHealth::Crashed { reason, .. } => {
                assert!(reason.contains("timer trap storm"), "{reason}");
            }
            other => panic!("expected crash, got {other:?}"),
        }
        assert!(!m.is_running());
        // A dead simulator no longer advances.
        assert!(m.advance(1000).is_empty());
    }

    #[test]
    fn sink_advance_matches_vec_advance() {
        // Same arming, one machine advanced through the Vec path and one
        // through the sink path: identical IRQ state, time, and health.
        for (period, horizon) in [(Some(100), 250_000u64), (Some(1), 250_000), (None, 500)] {
            let mut a = machine();
            let mut b = machine();
            for m in [&mut a, &mut b] {
                m.irqmp.unmask(6);
                m.timers.arm(0, 100, period);
                m.timers.arm(1, 250, Some(250));
            }
            let fired = a.advance_to(horizon);
            let mut pairs = Vec::new();
            let total = b.advance_to_with(horizon, &mut |i, irq| pairs.push((i, irq)));
            assert_eq!(total, fired.len());
            let mut distinct = fired;
            distinct.dedup();
            assert_eq!(pairs, distinct);
            assert_eq!(a.now(), b.now());
            assert_eq!(a.health(), b.health());
            assert_eq!(a.irqmp.pending_reg(), b.irqmp.pending_reg());
        }
    }

    #[test]
    fn moderate_timer_rate_survives() {
        let mut m = machine();
        m.timers.arm(0, 100, Some(100)); // 100 µs period over 250 ms = 2500 firings < 4096
        m.advance_to(250_000);
        assert!(m.is_running());
    }

    #[test]
    fn trap_log_bounded() {
        let mut m = Machine::new(MachineConfig { trap_log_limit: 3, ..Default::default() });
        for _ in 0..10 {
            m.record_trap(Trap::WindowOverflow);
        }
        assert_eq!(m.traps().len(), 3);
        assert_eq!(m.trap_total(), 10);
    }

    #[test]
    fn crash_is_sticky_and_timed() {
        let mut m = machine();
        m.advance(42);
        m.crash("first");
        m.crash("second");
        match m.health() {
            SimHealth::Crashed { reason, at } => {
                assert_eq!(reason, "first");
                assert_eq!(*at, 42);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn warm_reset_clears_volatile_state() {
        let mut m = machine();
        m.irqmp.unmask(6);
        m.timers.arm(0, 10, Some(10));
        m.advance_to(10);
        m.record_trap(Trap::WindowOverflow);
        m.warm_reset();
        assert_eq!(m.irqmp.pending_reg(), 0);
        assert!(m.timers.next_expiry().is_none());
        assert!(m.traps().is_empty());
        assert_eq!(m.now(), 10); // time keeps running
    }

    #[test]
    fn uart_reachable() {
        let mut m = machine();
        m.uart.put_str("hello");
        assert_eq!(m.uart.captured(), "hello");
    }
}
