//! SPARC V8 trap model.
//!
//! Trap type (`tt`) numbers follow the SPARC V8 manual, which is what the
//! LEON3 implements and what XtratuM's health monitor reports in its event
//! log. Only the traps the robustness campaign can provoke are enumerated;
//! adding more is a one-line change.

use std::fmt;

/// A processor trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Power-on / watchdog reset (tt 0x00).
    Reset,
    /// Instruction fetch from an unmapped/non-executable address (tt 0x01).
    InstructionAccessException,
    /// Undecodable instruction (tt 0x02).
    IllegalInstruction,
    /// Privileged instruction in user mode (tt 0x03).
    PrivilegedInstruction,
    /// Register-window overflow — the SPARC vehicle for stack exhaustion
    /// (tt 0x05). The legacy `XM_set_timer` bug ends here.
    WindowOverflow,
    /// Register-window underflow (tt 0x06).
    WindowUnderflow,
    /// Unaligned load/store (tt 0x07).
    MemAddressNotAligned,
    /// Load/store to an unmapped or protected address (tt 0x09). Carries
    /// the faulting address for HM logging.
    DataAccessException {
        /// The address whose access faulted.
        addr: u32,
    },
    /// Tagged-arithmetic overflow (tt 0x0A).
    TagOverflow,
    /// Integer division by zero (tt 0x2A).
    DivisionByZero,
    /// External interrupt, level 1..=15 (tt 0x11..0x1F).
    Interrupt(u8),
    /// `ta n` software trap — XtratuM hypercalls enter through one of
    /// these (tt 0x80 + n).
    SoftwareTrap(u8),
}

impl Trap {
    /// SPARC V8 trap type number as latched in `TBR.tt`.
    pub fn tt(&self) -> u8 {
        match self {
            Trap::Reset => 0x00,
            Trap::InstructionAccessException => 0x01,
            Trap::IllegalInstruction => 0x02,
            Trap::PrivilegedInstruction => 0x03,
            Trap::WindowOverflow => 0x05,
            Trap::WindowUnderflow => 0x06,
            Trap::MemAddressNotAligned => 0x07,
            Trap::DataAccessException { .. } => 0x09,
            Trap::TagOverflow => 0x0A,
            Trap::DivisionByZero => 0x2A,
            Trap::Interrupt(l) => 0x10 + (l & 0x0F),
            Trap::SoftwareTrap(n) => 0x80u8.wrapping_add(*n),
        }
    }

    /// True for traps that indicate a fault in the running code (as opposed
    /// to interrupts and deliberate software traps).
    pub fn is_fault(&self) -> bool {
        !matches!(self, Trap::Interrupt(_) | Trap::SoftwareTrap(_) | Trap::Reset)
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DataAccessException { addr } => {
                write!(f, "data_access_exception @ {addr:#010x} (tt 0x09)")
            }
            Trap::Interrupt(l) => write!(f, "interrupt_level_{l} (tt {:#04x})", self.tt()),
            Trap::SoftwareTrap(n) => write!(f, "trap_instruction ta {n} (tt {:#04x})", self.tt()),
            other => {
                let name = match other {
                    Trap::Reset => "reset",
                    Trap::InstructionAccessException => "instruction_access_exception",
                    Trap::IllegalInstruction => "illegal_instruction",
                    Trap::PrivilegedInstruction => "privileged_instruction",
                    Trap::WindowOverflow => "window_overflow",
                    Trap::WindowUnderflow => "window_underflow",
                    Trap::MemAddressNotAligned => "mem_address_not_aligned",
                    Trap::TagOverflow => "tag_overflow",
                    Trap::DivisionByZero => "division_by_zero",
                    _ => unreachable!(),
                };
                write!(f, "{name} (tt {:#04x})", self.tt())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tt_numbers_match_sparc_v8() {
        assert_eq!(Trap::Reset.tt(), 0x00);
        assert_eq!(Trap::InstructionAccessException.tt(), 0x01);
        assert_eq!(Trap::IllegalInstruction.tt(), 0x02);
        assert_eq!(Trap::PrivilegedInstruction.tt(), 0x03);
        assert_eq!(Trap::WindowOverflow.tt(), 0x05);
        assert_eq!(Trap::WindowUnderflow.tt(), 0x06);
        assert_eq!(Trap::MemAddressNotAligned.tt(), 0x07);
        assert_eq!(Trap::DataAccessException { addr: 0 }.tt(), 0x09);
        assert_eq!(Trap::TagOverflow.tt(), 0x0A);
        assert_eq!(Trap::DivisionByZero.tt(), 0x2A);
    }

    #[test]
    fn interrupt_levels_map_into_0x11_0x1f() {
        assert_eq!(Trap::Interrupt(1).tt(), 0x11);
        assert_eq!(Trap::Interrupt(15).tt(), 0x1F);
    }

    #[test]
    fn software_traps_start_at_0x80() {
        assert_eq!(Trap::SoftwareTrap(0).tt(), 0x80);
        assert_eq!(Trap::SoftwareTrap(0x10).tt(), 0x90);
    }

    #[test]
    fn fault_classification() {
        assert!(Trap::DataAccessException { addr: 4 }.is_fault());
        assert!(Trap::WindowOverflow.is_fault());
        assert!(!Trap::Interrupt(8).is_fault());
        assert!(!Trap::SoftwareTrap(0).is_fault());
        assert!(!Trap::Reset.is_fault());
    }

    #[test]
    fn display_is_informative() {
        let s = Trap::DataAccessException { addr: 0xdead_beec }.to_string();
        assert!(s.contains("0xdeadbeec"), "{s}");
        assert!(Trap::Interrupt(8).to_string().contains("interrupt_level_8"));
        assert!(Trap::WindowOverflow.to_string().contains("window_overflow"));
    }
}
