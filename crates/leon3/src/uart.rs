//! APBUART console capture.
//!
//! TSIM mirrors the UART to the host terminal; the robustness harness
//! instead captures it so each test's console output can be attached to
//! its log. A byte budget guards against runaway output from a wedged
//! guest flooding host memory.

/// Captured UART console.
#[derive(Debug, Clone)]
pub struct Uart {
    buffer: String,
    limit: usize,
    /// Bytes dropped once the capture limit was reached.
    pub dropped: u64,
}

impl Default for Uart {
    fn default() -> Self {
        Self::new(64 * 1024)
    }
}

impl Uart {
    /// Creates a console capturing at most `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Uart { buffer: String::new(), limit, dropped: 0 }
    }

    /// Transmits one byte. Non-UTF8 bytes are rendered as `\xNN`.
    pub fn put_byte(&mut self, b: u8) {
        if self.buffer.len() >= self.limit {
            self.dropped += 1;
            return;
        }
        match b {
            b'\n' | b'\r' | b'\t' | 0x20..=0x7E => self.buffer.push(b as char),
            _ => {
                use std::fmt::Write;
                let _ = write!(self.buffer, "\\x{b:02x}");
            }
        }
    }

    /// Transmits a string.
    pub fn put_str(&mut self, s: &str) {
        if flightrec::active() && s.contains("PANIC") {
            // The kernel's panic banner reaches the console as one
            // fragment; stamp it into the flight record. The console has
            // no clock, so the event inherits the last timestamp.
            flightrec::record_timeless(
                flightrec::EventKind::UartPanic,
                flightrec::NO_PARTITION,
                0,
                0,
                0,
            );
        }
        for b in s.bytes() {
            self.put_byte(b);
        }
    }

    /// Transmits formatted text, rendering straight into the capture
    /// buffer. Equivalent to `put_str(&format!(...))` byte for byte, but
    /// without materialising the intermediate `String` — the kernel's
    /// panic/diagnostic paths use this so formatting costs no heap
    /// allocation beyond the capture buffer itself.
    pub fn put_fmt(&mut self, args: std::fmt::Arguments<'_>) {
        struct Sink<'a>(&'a mut Uart);
        impl std::fmt::Write for Sink<'_> {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                self.0.put_str(s);
                Ok(())
            }
        }
        let _ = std::fmt::Write::write_fmt(&mut Sink(self), args);
    }

    /// Everything captured so far.
    pub fn captured(&self) -> &str {
        &self.buffer
    }

    /// Consumes the console, handing the capture buffer to the caller
    /// without copying it.
    pub fn into_captured(self) -> String {
        self.buffer
    }

    /// Clears the capture (between tests).
    pub fn clear(&mut self) {
        self.buffer.clear();
        self.dropped = 0;
    }

    /// Restores to `src`'s state in place, reusing the capture buffer's
    /// allocation (part of the campaign executor's per-test state reset).
    pub fn restore_from(&mut self, src: &Uart) {
        self.buffer.clone_from(&src.buffer);
        self.limit = src.limit;
        self.dropped = src.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_text() {
        let mut u = Uart::default();
        u.put_str("XM 3.x booting\n");
        assert_eq!(u.captured(), "XM 3.x booting\n");
    }

    #[test]
    fn escapes_binary() {
        let mut u = Uart::default();
        u.put_byte(0x00);
        u.put_byte(0xFF);
        assert_eq!(u.captured(), "\\x00\\xff");
    }

    #[test]
    fn enforces_limit() {
        let mut u = Uart::new(4);
        u.put_str("abcdefgh");
        assert_eq!(u.captured(), "abcd");
        assert_eq!(u.dropped, 4);
    }

    #[test]
    fn put_fmt_matches_put_str_of_format() {
        let mut a = Uart::new(16);
        let mut b = Uart::new(16);
        a.put_fmt(format_args!("panic: {} at {}\n", "storm\x01", 42));
        b.put_str(&format!("panic: {} at {}\n", "storm\x01", 42));
        assert_eq!(a.captured(), b.captured());
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn clear_resets() {
        let mut u = Uart::new(4);
        u.put_str("abcdef");
        u.clear();
        assert_eq!(u.captured(), "");
        assert_eq!(u.dropped, 0);
        u.put_str("xy");
        assert_eq!(u.captured(), "xy");
    }
}
