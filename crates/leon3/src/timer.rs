//! GRLIB GPTIMER-style timer unit.
//!
//! The LEON3 GPTIMER provides a prescaler plus several down-counting timer
//! units, each able to raise an interrupt on underflow and optionally
//! auto-reload. XtratuM uses one unit as the scheduler tick source and one
//! for partition virtual timers; we expose two units by default (matching
//! the GR712/EagleEye configuration) but the count is configurable.

use crate::TimeUs;

/// One down-counting timer unit.
#[derive(Debug, Clone, Default)]
pub struct TimerUnit {
    /// Absolute expiry instant (µs). `None` = disarmed.
    pub expiry: Option<TimeUs>,
    /// Auto-reload period (µs). `None` = one-shot.
    pub period: Option<TimeUs>,
    /// IRQ line (IRQMP level) raised on expiry.
    pub irq: u8,
    /// Count of expiries since reset (diagnostics / trap-storm detection).
    pub fired: u64,
}

/// Most expiries a single unit delivers within one advance; catch-up
/// beyond this resumes on the next advance. The machine layer's
/// trap-storm threshold sits far below this, so the valve is
/// unobservable there.
const MAX_FIRES_PER_ADVANCE: u64 = 1_000_000;

/// The timer block: a set of units sharing one time base.
#[derive(Debug, Clone)]
pub struct GpTimer {
    units: Vec<TimerUnit>,
    /// Cached earliest pending expiry across all units (always exact, so
    /// [`GpTimer::next_expiry`] and the no-event early exit in
    /// [`GpTimer::advance_to_with`] are O(1)).
    next: Option<TimeUs>,
}

impl GpTimer {
    /// Creates a timer block with `n` units, assigning IRQ lines starting
    /// at `base_irq` (GPTIMER on LEON3 conventionally uses 6, 7, ...).
    pub fn new(n: usize, base_irq: u8) -> Self {
        let units =
            (0..n).map(|i| TimerUnit { irq: base_irq + i as u8, ..Default::default() }).collect();
        GpTimer { units, next: None }
    }

    fn recompute_next(&mut self) {
        self.next = self.units.iter().filter_map(|u| u.expiry).min();
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the block has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Immutable unit access.
    pub fn unit(&self, idx: usize) -> Option<&TimerUnit> {
        self.units.get(idx)
    }

    /// Restores to `src`'s state in place without reallocating the unit
    /// table (part of the campaign executor's per-test state reset).
    pub fn restore_from(&mut self, src: &GpTimer) {
        self.units.clone_from(&src.units);
        self.next = src.next;
    }

    /// Arms unit `idx` to expire at absolute time `expiry`; `period`
    /// enables auto-reload.
    pub fn arm(&mut self, idx: usize, expiry: TimeUs, period: Option<TimeUs>) -> bool {
        match self.units.get_mut(idx) {
            Some(u) => {
                u.expiry = Some(expiry);
                u.period = period;
                // Re-arming can move a deadline later, so a min-merge is
                // not enough to keep the cache exact.
                self.recompute_next();
                true
            }
            None => false,
        }
    }

    /// Disarms unit `idx`.
    pub fn disarm(&mut self, idx: usize) -> bool {
        match self.units.get_mut(idx) {
            Some(u) => {
                u.expiry = None;
                u.period = None;
                self.recompute_next();
                true
            }
            None => false,
        }
    }

    /// The earliest pending expiry across all units, if any.
    pub fn next_expiry(&self) -> Option<TimeUs> {
        self.next
    }

    /// Advances the time base to `now`, collecting `(unit_index, irq)` for
    /// every expiry in `(prev, now]`. Convenience wrapper over
    /// [`GpTimer::advance_to_with`] that materialises the expiries in a
    /// `Vec`, one entry per fire; the kernel hot path uses the sink
    /// variant directly so no heap allocation happens per advance.
    pub fn advance_to(&mut self, now: TimeUs) -> Vec<(usize, u8)> {
        let mut fired = Vec::new();
        self.advance_to_with(now, &mut |i, irq, count| {
            for _ in 0..count {
                fired.push((i, irq));
            }
        });
        fired
    }

    /// Advances the time base to `now`, invoking `sink(unit_index, irq,
    /// count)` once per expiring unit, in unit order, where `count` is how
    /// many times that unit fires in `(prev, now]`. Periodic units re-arm;
    /// a periodic unit whose period is shorter than the advance window
    /// fires once per elapsed period (this is what floods the IRQ
    /// controller in the `XM_set_timer(1,1,1)` reproduction), but the fire
    /// count is computed in closed form so even a million-expiry storm
    /// costs O(1) per unit. A per-advance valve caps any single unit at
    /// [`MAX_FIRES_PER_ADVANCE`]; the remainder is delivered by later
    /// advances.
    pub fn advance_to_with(&mut self, now: TimeUs, sink: &mut dyn FnMut(usize, u8, u64)) {
        match self.next {
            Some(e) if e <= now => {}
            // No armed unit is due: the advance is a pure clock move with
            // no timer state change. This O(1) exit is what the kernel's
            // event-horizon fast path leans on.
            _ => return,
        }
        for (i, u) in self.units.iter_mut().enumerate() {
            let Some(exp) = u.expiry else { continue };
            if exp > now {
                continue;
            }
            match u.period {
                Some(p) if p > 0 => {
                    // Fires at exp, exp + p, ..., the last one <= now:
                    // (now - exp) / p + 1 of them, capped per advance.
                    let count = ((now - exp) / p + 1).min(MAX_FIRES_PER_ADVANCE);
                    u.fired += count;
                    u.expiry = Some(exp + count * p);
                    sink(i, u.irq, count);
                }
                _ => {
                    u.fired += 1;
                    u.expiry = None;
                    sink(i, u.irq, 1);
                }
            }
        }
        self.recompute_next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once() {
        let mut t = GpTimer::new(2, 6);
        assert!(t.arm(0, 100, None));
        assert!(t.advance_to(99).is_empty());
        let fired = t.advance_to(100);
        assert_eq!(fired, vec![(0, 6)]);
        assert!(t.advance_to(1000).is_empty());
        assert_eq!(t.unit(0).unwrap().fired, 1);
    }

    #[test]
    fn periodic_fires_per_period() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 10, Some(10));
        let fired = t.advance_to(35);
        assert_eq!(fired.len(), 3); // at 10, 20, 30
        assert_eq!(t.unit(0).unwrap().expiry, Some(40));
    }

    #[test]
    fn tiny_period_floods() {
        let mut t = GpTimer::new(1, 8);
        t.arm(0, 1, Some(1));
        let fired = t.advance_to(10_000);
        assert_eq!(fired.len(), 10_000);
    }

    #[test]
    fn disarm_stops_firing() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 10, Some(10));
        t.advance_to(10);
        assert!(t.disarm(0));
        assert!(t.advance_to(1000).is_empty());
    }

    #[test]
    fn next_expiry_is_min() {
        let mut t = GpTimer::new(3, 6);
        t.arm(0, 50, None);
        t.arm(2, 20, None);
        assert_eq!(t.next_expiry(), Some(20));
        t.advance_to(20);
        assert_eq!(t.next_expiry(), Some(50));
    }

    #[test]
    fn out_of_range_unit_rejected() {
        let mut t = GpTimer::new(2, 6);
        assert!(!t.arm(5, 10, None));
        assert!(!t.disarm(5));
        assert!(t.unit(5).is_none());
    }

    #[test]
    fn irq_lines_assigned_sequentially() {
        let t = GpTimer::new(2, 6);
        assert_eq!(t.unit(0).unwrap().irq, 6);
        assert_eq!(t.unit(1).unwrap().irq, 7);
    }

    #[test]
    fn zero_period_degrades_to_one_shot() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 5, Some(0));
        assert_eq!(t.advance_to(100).len(), 1);
        assert_eq!(t.unit(0).unwrap().expiry, None);
    }

    /// Regression: the old safety valve tested the unit's *lifetime* fired
    /// count (`fired % 1_000_000 == 0`), so a unit whose count reached a
    /// 1M multiple mid-advance stopped after that fire and silently
    /// dropped the rest of the window. The valve is per-advance now: a
    /// second advance straddling the boundary must deliver every expiry.
    #[test]
    fn valve_is_per_advance_not_lifetime() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 1, Some(1));
        // 999_999 fires bring the lifetime count one short of the old
        // valve's modulus...
        assert_eq!(t.advance_to(999_999).len(), 999_999);
        // ... so this advance crosses it mid-way. The old code fired once
        // (count 1_000_000, % 1M == 0 -> break) and dropped 1000 expiries.
        assert_eq!(t.advance_to(1_001_000).len(), 1001);
        assert_eq!(t.unit(0).unwrap().fired, 1_001_000);
        assert_eq!(t.next_expiry(), Some(1_001_001));
    }

    /// The per-advance valve itself: a single advance spanning more than
    /// `MAX_FIRES_PER_ADVANCE` periods delivers exactly the cap and leaves
    /// the unit re-armed to continue from where the cap stopped it.
    #[test]
    fn valve_caps_single_advance() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 1, Some(1));
        let mut total = 0u64;
        t.advance_to_with(2_500_000, &mut |_, _, count| total += count);
        assert_eq!(total, MAX_FIRES_PER_ADVANCE);
        assert_eq!(t.next_expiry(), Some(1 + MAX_FIRES_PER_ADVANCE));
    }

    /// Closed-form batching must agree with first-principles expiry
    /// enumeration on awkward phase/period combinations.
    #[test]
    fn closed_form_matches_enumeration() {
        for (start, period, to) in
            [(10u64, 7u64, 94u64), (5, 1, 5), (5, 1, 4), (3, 1000, 3), (0, 9, 100), (99, 100, 100)]
        {
            let mut t = GpTimer::new(1, 6);
            t.arm(0, start, Some(period));
            let fired = t.advance_to(to);
            let expected = (0..).map(|k| start + k * period).take_while(|&e| e <= to).count();
            assert_eq!(fired.len(), expected, "start {start} period {period} to {to}");
            let next = start + expected as u64 * period;
            assert_eq!(t.next_expiry(), Some(next));
        }
    }
}
