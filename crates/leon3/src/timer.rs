//! GRLIB GPTIMER-style timer unit.
//!
//! The LEON3 GPTIMER provides a prescaler plus several down-counting timer
//! units, each able to raise an interrupt on underflow and optionally
//! auto-reload. XtratuM uses one unit as the scheduler tick source and one
//! for partition virtual timers; we expose two units by default (matching
//! the GR712/EagleEye configuration) but the count is configurable.

use crate::TimeUs;

/// One down-counting timer unit.
#[derive(Debug, Clone, Default)]
pub struct TimerUnit {
    /// Absolute expiry instant (µs). `None` = disarmed.
    pub expiry: Option<TimeUs>,
    /// Auto-reload period (µs). `None` = one-shot.
    pub period: Option<TimeUs>,
    /// IRQ line (IRQMP level) raised on expiry.
    pub irq: u8,
    /// Count of expiries since reset (diagnostics / trap-storm detection).
    pub fired: u64,
}

/// The timer block: a set of units sharing one time base.
#[derive(Debug, Clone)]
pub struct GpTimer {
    units: Vec<TimerUnit>,
}

impl GpTimer {
    /// Creates a timer block with `n` units, assigning IRQ lines starting
    /// at `base_irq` (GPTIMER on LEON3 conventionally uses 6, 7, ...).
    pub fn new(n: usize, base_irq: u8) -> Self {
        let units =
            (0..n).map(|i| TimerUnit { irq: base_irq + i as u8, ..Default::default() }).collect();
        GpTimer { units }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True if the block has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Immutable unit access.
    pub fn unit(&self, idx: usize) -> Option<&TimerUnit> {
        self.units.get(idx)
    }

    /// Restores to `src`'s state in place without reallocating the unit
    /// table (part of the campaign executor's per-test state reset).
    pub fn restore_from(&mut self, src: &GpTimer) {
        self.units.clone_from(&src.units);
    }

    /// Arms unit `idx` to expire at absolute time `expiry`; `period`
    /// enables auto-reload.
    pub fn arm(&mut self, idx: usize, expiry: TimeUs, period: Option<TimeUs>) -> bool {
        match self.units.get_mut(idx) {
            Some(u) => {
                u.expiry = Some(expiry);
                u.period = period;
                true
            }
            None => false,
        }
    }

    /// Disarms unit `idx`.
    pub fn disarm(&mut self, idx: usize) -> bool {
        match self.units.get_mut(idx) {
            Some(u) => {
                u.expiry = None;
                u.period = None;
                true
            }
            None => false,
        }
    }

    /// The earliest pending expiry across all units, if any.
    pub fn next_expiry(&self) -> Option<TimeUs> {
        self.units.iter().filter_map(|u| u.expiry).min()
    }

    /// Advances the time base to `now`, collecting `(unit_index, irq)` for
    /// every expiry in `(prev, now]`. Convenience wrapper over
    /// [`GpTimer::advance_to_with`] that materialises the expiries in a
    /// `Vec`; the kernel hot path uses the sink variant directly so no
    /// heap allocation happens per advance.
    pub fn advance_to(&mut self, now: TimeUs) -> Vec<(usize, u8)> {
        let mut fired = Vec::new();
        self.advance_to_with(now, &mut |i, irq| fired.push((i, irq)));
        fired
    }

    /// Advances the time base to `now`, invoking `sink(unit_index, irq)`
    /// for every expiry in `(prev, now]`, in unit order. Periodic units
    /// re-arm; a periodic unit whose period is shorter than the advance
    /// window fires once per elapsed period (this is what floods the IRQ
    /// controller in the `XM_set_timer(1,1,1)` reproduction).
    pub fn advance_to_with(&mut self, now: TimeUs, sink: &mut dyn FnMut(usize, u8)) {
        for (i, u) in self.units.iter_mut().enumerate() {
            while let Some(exp) = u.expiry {
                if exp > now {
                    break;
                }
                u.fired += 1;
                sink(i, u.irq);
                match u.period {
                    Some(p) if p > 0 => u.expiry = Some(exp + p),
                    _ => {
                        u.expiry = None;
                        break;
                    }
                }
                // Safety valve: never loop more than 1M times per advance;
                // the machine layer treats this as a trap storm anyway.
                if u.fired % 1_000_000 == 0 {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once() {
        let mut t = GpTimer::new(2, 6);
        assert!(t.arm(0, 100, None));
        assert!(t.advance_to(99).is_empty());
        let fired = t.advance_to(100);
        assert_eq!(fired, vec![(0, 6)]);
        assert!(t.advance_to(1000).is_empty());
        assert_eq!(t.unit(0).unwrap().fired, 1);
    }

    #[test]
    fn periodic_fires_per_period() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 10, Some(10));
        let fired = t.advance_to(35);
        assert_eq!(fired.len(), 3); // at 10, 20, 30
        assert_eq!(t.unit(0).unwrap().expiry, Some(40));
    }

    #[test]
    fn tiny_period_floods() {
        let mut t = GpTimer::new(1, 8);
        t.arm(0, 1, Some(1));
        let fired = t.advance_to(10_000);
        assert_eq!(fired.len(), 10_000);
    }

    #[test]
    fn disarm_stops_firing() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 10, Some(10));
        t.advance_to(10);
        assert!(t.disarm(0));
        assert!(t.advance_to(1000).is_empty());
    }

    #[test]
    fn next_expiry_is_min() {
        let mut t = GpTimer::new(3, 6);
        t.arm(0, 50, None);
        t.arm(2, 20, None);
        assert_eq!(t.next_expiry(), Some(20));
        t.advance_to(20);
        assert_eq!(t.next_expiry(), Some(50));
    }

    #[test]
    fn out_of_range_unit_rejected() {
        let mut t = GpTimer::new(2, 6);
        assert!(!t.arm(5, 10, None));
        assert!(!t.disarm(5));
        assert!(t.unit(5).is_none());
    }

    #[test]
    fn irq_lines_assigned_sequentially() {
        let t = GpTimer::new(2, 6);
        assert_eq!(t.unit(0).unwrap().irq, 6);
        assert_eq!(t.unit(1).unwrap().irq, 7);
    }

    #[test]
    fn zero_period_degrades_to_one_shot() {
        let mut t = GpTimer::new(1, 6);
        t.arm(0, 5, Some(0));
        assert_eq!(t.advance_to(100).len(), 1);
        assert_eq!(t.unit(0).unwrap().expiry, None);
    }
}
