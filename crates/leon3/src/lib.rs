//! `leon3-sim` — a LEON3/TSIM-flavoured machine substrate.
//!
//! The paper's testbed runs XtratuM on a SPARC LEON3 processor simulated by
//! Aeroflex Gaisler's TSIM. Neither the hardware nor the commercial
//! simulator is available here, so this crate provides the closest
//! synthetic equivalent that exercises the same code paths the robustness
//! campaign observes:
//!
//! * a 32-bit physical **address space** with named regions, per-partition
//!   protection contexts, and alignment checks ([`addrspace`]) — the
//!   substrate for spatial partitioning and for the `XM_multicall` /
//!   `XM_memory_copy` pointer-validation experiments;
//! * the SPARC V8 **trap model** ([`trap`]) — data access exceptions,
//!   window overflow (the kernel-stack overflow vehicle of the
//!   `XM_set_timer` bug), interrupt levels, software traps (hypercalls);
//! * GRLIB-style devices: a two-unit **GPTIMER** ([`timer`]), an **IRQMP**
//!   interrupt controller ([`irqmp`]) and an APBUART console ([`uart`]);
//! * a composed [`machine::Machine`] with a TSIM-like health state: the
//!   simulator itself can *crash* (the paper's `XM_set_timer(1,1,1)` test
//!   kills TSIM with a timer trap storm; we reproduce that as a detected
//!   trap flood), which the robustness classifier treats as its own
//!   terminal outcome.
//!
//! Fidelity note: no SPARC instructions are interpreted. Guest "code" is
//! supplied by the embedding kernel as Rust callables that consume
//! simulated time and raise traps/hypercalls; the data type fault model
//! only observes the ABI boundary, which is fully modelled.

pub mod addrspace;
pub mod irqmp;
pub mod machine;
pub mod timer;
pub mod trap;
pub mod uart;

pub use addrspace::{
    AccessCtx, AccessKind, AddressSpace, MemFault, MemFaultKind, Owner, Perms, Region,
};
pub use machine::{Machine, MachineConfig, SimHealth};
pub use timer::{GpTimer, TimerUnit};
pub use trap::Trap;

/// A 32-bit physical address on the simulated bus.
pub type Addr = u32;

/// Simulated time in microseconds since power-on.
pub type TimeUs = u64;
