//! IRQMP — the LEON3 multiprocessor interrupt controller (single-CPU view).
//!
//! Fifteen interrupt lines (1..=15, level 15 is non-maskable on real
//! hardware but XM masks at the kernel layer anyway). The controller keeps
//! pending/mask/force registers; the kernel reads the highest pending
//! unmasked level and acknowledges it.

/// Interrupt controller state.
#[derive(Debug, Clone)]
pub struct Irqmp {
    pending: u16,
    mask: u16,
    force: u16,
    /// Total interrupts latched since reset (diagnostics).
    pub latched: u64,
}

const LINE_RANGE: std::ops::RangeInclusive<u8> = 1..=15;

impl Default for Irqmp {
    fn default() -> Self {
        Self::new()
    }
}

impl Irqmp {
    /// Creates a controller with all lines masked and nothing pending.
    pub fn new() -> Self {
        Irqmp { pending: 0, mask: 0, force: 0, latched: 0 }
    }

    fn bit(level: u8) -> u16 {
        1u16 << level
    }

    /// Latches interrupt `level` as pending. Out-of-range levels are
    /// ignored (real hardware has no such lines).
    pub fn raise(&mut self, level: u8) {
        if LINE_RANGE.contains(&level) {
            self.pending |= Self::bit(level);
            self.latched += 1;
        }
    }

    /// Software-forced interrupt (the FORCE register).
    pub fn force(&mut self, level: u8) {
        if LINE_RANGE.contains(&level) {
            self.force |= Self::bit(level);
            self.latched += 1;
        }
    }

    /// Unmasks (enables) a line.
    pub fn unmask(&mut self, level: u8) {
        if LINE_RANGE.contains(&level) {
            self.mask |= Self::bit(level);
        }
    }

    /// Masks (disables) a line.
    pub fn mask(&mut self, level: u8) {
        if LINE_RANGE.contains(&level) {
            self.mask &= !Self::bit(level);
        }
    }

    /// Applies a full mask register value (bit per level; bit0 ignored).
    pub fn set_mask_reg(&mut self, value: u16) {
        self.mask = value & 0xFFFE;
    }

    /// Current mask register.
    pub fn mask_reg(&self) -> u16 {
        self.mask
    }

    /// Current pending|force register.
    pub fn pending_reg(&self) -> u16 {
        self.pending | self.force
    }

    /// True if `level` is pending (or forced).
    pub fn is_pending(&self, level: u8) -> bool {
        LINE_RANGE.contains(&level) && (self.pending_reg() & Self::bit(level)) != 0
    }

    /// Highest-priority pending unmasked level, if any (15 = highest).
    pub fn highest_pending(&self) -> Option<u8> {
        let active = self.pending_reg() & self.mask;
        (1..=15u8).rev().find(|&l| active & Self::bit(l) != 0)
    }

    /// Acknowledges (clears) a pending level.
    pub fn ack(&mut self, level: u8) {
        if LINE_RANGE.contains(&level) {
            self.pending &= !Self::bit(level);
            self.force &= !Self::bit(level);
        }
    }

    /// Clears all pending state (warm reset).
    pub fn clear_all(&mut self) {
        self.pending = 0;
        self.force = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_ack() {
        let mut c = Irqmp::new();
        c.unmask(8);
        c.raise(8);
        assert!(c.is_pending(8));
        assert_eq!(c.highest_pending(), Some(8));
        c.ack(8);
        assert!(!c.is_pending(8));
        assert_eq!(c.highest_pending(), None);
    }

    #[test]
    fn masked_lines_do_not_surface() {
        let mut c = Irqmp::new();
        c.raise(5);
        assert!(c.is_pending(5)); // latched...
        assert_eq!(c.highest_pending(), None); // ...but masked
        c.unmask(5);
        assert_eq!(c.highest_pending(), Some(5));
    }

    #[test]
    fn priority_is_highest_level() {
        let mut c = Irqmp::new();
        c.set_mask_reg(0xFFFE);
        c.raise(3);
        c.raise(12);
        c.raise(7);
        assert_eq!(c.highest_pending(), Some(12));
        c.ack(12);
        assert_eq!(c.highest_pending(), Some(7));
    }

    #[test]
    fn force_register_behaves_like_pending() {
        let mut c = Irqmp::new();
        c.unmask(9);
        c.force(9);
        assert!(c.is_pending(9));
        c.ack(9);
        assert!(!c.is_pending(9));
    }

    #[test]
    fn out_of_range_levels_ignored() {
        let mut c = Irqmp::new();
        c.raise(0);
        c.raise(16);
        c.unmask(0);
        assert_eq!(c.pending_reg(), 0);
        assert_eq!(c.mask_reg(), 0);
        assert!(!c.is_pending(0));
    }

    #[test]
    fn mask_reg_bit0_cleared() {
        let mut c = Irqmp::new();
        c.set_mask_reg(0xFFFF);
        assert_eq!(c.mask_reg(), 0xFFFE);
    }

    #[test]
    fn clear_all_resets_pending_not_mask() {
        let mut c = Irqmp::new();
        c.unmask(4);
        c.raise(4);
        c.force(6);
        c.clear_all();
        assert_eq!(c.pending_reg(), 0);
        assert_eq!(c.mask_reg(), Irqmp::bit(4));
    }

    #[test]
    fn latch_counter_counts() {
        let mut c = Irqmp::new();
        for _ in 0..5 {
            c.raise(3);
        }
        assert_eq!(c.latched, 5);
    }
}
