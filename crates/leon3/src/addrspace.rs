//! Physical address space with protection contexts.
//!
//! XtratuM configures the LEON3 MMU so that each partition can only touch
//! the memory areas assigned to it by the system configuration, while the
//! kernel (supervisor mode) sees everything. This module models exactly
//! that: named regions with an owner and permissions, plus access checks
//! that produce the same trap a real LEON3 would raise.

use crate::trap::Trap;
use crate::Addr;
use std::sync::Arc;

/// Read/write/execute permission bits of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perms {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetch allowed.
    pub execute: bool,
}

impl Perms {
    /// Read+write+execute.
    pub const RWX: Perms = Perms { read: true, write: true, execute: true };
    /// Read+write, no execute.
    pub const RW: Perms = Perms { read: true, write: true, execute: false };
    /// Read-only.
    pub const RO: Perms = Perms { read: true, write: false, execute: false };
    /// Read + execute (code ROM).
    pub const RX: Perms = Perms { read: true, write: false, execute: true };
}

/// Who a region belongs to, for protection-context checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// Kernel-private memory (hypervisor image, kernel stacks, HM log).
    Kernel,
    /// Memory area assigned to partition `id`.
    Partition(u32),
    /// Memory readable/writable by every partition (e.g. a shared pool).
    Shared,
    /// Memory-mapped device registers; only the kernel may touch them.
    Device,
}

/// The protection context an access executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessCtx {
    /// Supervisor mode — the separation kernel. Sees everything.
    Kernel,
    /// User mode inside partition `id`.
    Partition(u32),
}

/// Load or store, for fault reporting and permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An instruction fetch.
    Execute,
}

/// Why an access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFaultKind {
    /// No region maps the address range.
    Unmapped,
    /// Address not aligned to the access width.
    Misaligned,
    /// Region exists but the context/permissions forbid the access.
    Protection,
}

/// A failed memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting address.
    pub addr: Addr,
    /// Access that failed.
    pub kind: AccessKind,
    /// Failure cause.
    pub fault: MemFaultKind,
}

impl MemFault {
    /// The SPARC trap this fault raises.
    pub fn trap(&self) -> Trap {
        match self.fault {
            MemFaultKind::Misaligned => Trap::MemAddressNotAligned,
            _ => match self.kind {
                AccessKind::Execute => Trap::InstructionAccessException,
                _ => Trap::DataAccessException { addr: self.addr },
            },
        }
    }
}

/// A contiguous, backed memory region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Human-readable name (shows up in HM logs and reports).
    pub name: String,
    /// First address of the region.
    pub base: Addr,
    /// Length in bytes.
    pub size: u32,
    /// Protection owner.
    pub owner: Owner,
    /// Permission bits (checked for partition contexts; the kernel
    /// bypasses permissions but still faults on unmapped addresses).
    pub perms: Perms,
}

impl Region {
    fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && (addr as u64) < self.base as u64 + self.size as u64
    }

    fn contains_range(&self, addr: Addr, len: u32) -> bool {
        self.contains(addr) && (addr as u64 + len as u64) <= self.base as u64 + self.size as u64
    }
}

const PAGE_BITS: usize = 12;
const PAGE: usize = 1 << PAGE_BITS;

/// Flat backing store of one region with page-granular dirty tracking.
///
/// The region's contents live in one contiguous, page-rounded buffer, so
/// loads and stores are direct slice copies — no refcounting, no page
/// chasing, no copy-on-write bookkeeping on the access path. Every store
/// marks the 4 KiB pages it touches; [`RegionMem::restore_from`] copies
/// back only the marked pages, which is what makes per-test state reset
/// in the campaign executor a bounded memcpy proportional to the bytes a
/// test actually dirtied, not to the configured memory size.
#[derive(Debug)]
struct RegionMem {
    bytes: Box<[u8]>,
    /// Pages written since creation, the last clone, or the last restore.
    dirty: Vec<u32>,
    /// Per-page dirty bits mirroring `dirty` (constant-time dedup).
    dirty_map: Box<[bool]>,
}

impl Clone for RegionMem {
    /// A clone starts with an empty dirty set: it is byte-identical to
    /// its source at clone time, so a later
    /// [`restore_from`](RegionMem::restore_from) against that (since
    /// unmodified) source only needs the pages written *after* the clone.
    fn clone(&self) -> Self {
        RegionMem {
            bytes: self.bytes.clone(),
            dirty: Vec::new(),
            dirty_map: vec![false; self.dirty_map.len()].into_boxed_slice(),
        }
    }
}

impl RegionMem {
    fn zeroed(len: usize) -> Self {
        let n_pages = len.div_ceil(PAGE);
        RegionMem {
            bytes: vec![0u8; n_pages * PAGE].into_boxed_slice(),
            dirty: Vec::new(),
            dirty_map: vec![false; n_pages].into_boxed_slice(),
        }
    }

    fn read(&self, off: usize, len: usize) -> Vec<u8> {
        self.bytes[off..off + len].to_vec()
    }

    fn read_into(&self, off: usize, len: usize, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.bytes[off..off + len]);
    }

    fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.bytes[off..off + len]
    }

    fn write(&mut self, off: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let (first, last) = (off >> PAGE_BITS, (off + data.len() - 1) >> PAGE_BITS);
        for p in first..=last {
            if !self.dirty_map[p] {
                self.dirty_map[p] = true;
                self.dirty.push(p as u32);
            }
        }
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }

    /// Copies back every dirty page from `src` and clears the dirty set.
    /// `src` must be the buffer this one was cloned from (or restored to
    /// last), unmodified since — clean pages are already identical.
    fn restore_from(&mut self, src: &RegionMem) {
        debug_assert_eq!(self.bytes.len(), src.bytes.len());
        for &p in &self.dirty {
            let lo = (p as usize) << PAGE_BITS;
            self.bytes[lo..lo + PAGE].copy_from_slice(&src.bytes[lo..lo + PAGE]);
            self.dirty_map[p as usize] = false;
        }
        self.dirty.clear();
    }
}

/// The simulated physical address space.
///
/// ```
/// use leon3_sim::addrspace::*;
///
/// let mut mem = AddressSpace::new();
/// mem.add_region(Region {
///     name: "p0".into(),
///     base: 0x4010_0000,
///     size: 0x1000,
///     owner: Owner::Partition(0),
///     perms: Perms::RW,
/// }).unwrap();
///
/// // Partition 0 can use its own memory...
/// mem.write_u32(AccessCtx::Partition(0), 0x4010_0000, 7).unwrap();
/// assert_eq!(mem.read_u32(AccessCtx::Partition(0), 0x4010_0000).unwrap(), 7);
/// // ... but partition 1 faults on it (spatial isolation).
/// let fault = mem.read_u32(AccessCtx::Partition(1), 0x4010_0000).unwrap_err();
/// assert_eq!(fault.fault, MemFaultKind::Protection);
/// ```
#[derive(Debug, Default, Clone)]
pub struct AddressSpace {
    // Arc-shared so snapshot clones don't reallocate the metadata (the
    // region names are heap strings); add_region is the only mutator.
    regions: Arc<Vec<Region>>,
    backing: Vec<RegionMem>,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a zero-initialised region. Overlapping regions are rejected —
    /// the XM configuration tool performs the same validation.
    pub fn add_region(&mut self, region: Region) -> Result<usize, String> {
        if region.size == 0 {
            return Err(format!("region '{}' has zero size", region.name));
        }
        if region.base as u64 + region.size as u64 > u32::MAX as u64 + 1 {
            return Err(format!("region '{}' exceeds the 32-bit address space", region.name));
        }
        for r in self.regions.iter() {
            let a0 = region.base as u64;
            let a1 = a0 + region.size as u64;
            let b0 = r.base as u64;
            let b1 = b0 + r.size as u64;
            if a0 < b1 && b0 < a1 {
                return Err(format!("region '{}' overlaps region '{}'", region.name, r.name));
            }
        }
        self.backing.push(RegionMem::zeroed(region.size as usize));
        Arc::make_mut(&mut self.regions).push(region);
        Ok(self.regions.len() - 1)
    }

    /// All configured regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Restores every region to `src`'s contents by copying back only the
    /// pages written since this space was cloned from `src` (or last
    /// restored to it). `src` is the flat boot image: it must be
    /// unmodified since the clone, which holds for boot snapshots — they
    /// are captured once and never executed. Allocation-free and bounded
    /// by the number of dirty pages, this is the campaign executor's
    /// per-test state reset.
    pub fn restore_from(&mut self, src: &AddressSpace) {
        debug_assert_eq!(self.backing.len(), src.backing.len(), "region layout mismatch");
        self.regions.clone_from(&src.regions);
        for (dst, s) in self.backing.iter_mut().zip(&src.backing) {
            dst.restore_from(s);
        }
    }

    /// Total pages currently marked dirty across all regions (diagnostics
    /// for the restore path; a restore copies exactly this many pages).
    pub fn dirty_pages(&self) -> usize {
        self.backing.iter().map(|b| b.dirty.len()).sum()
    }

    /// Finds the region covering `addr`, if any.
    pub fn region_at(&self, addr: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    fn region_index(&self, addr: Addr, len: u32) -> Option<usize> {
        self.regions.iter().position(|r| r.contains_range(addr, len))
    }

    /// Checks whether `ctx` may perform `kind` on `[addr, addr+len)`.
    ///
    /// Rules (mirroring XM's MMU setup):
    /// * any context faults on unmapped or cross-region ranges;
    /// * accesses must be aligned to their width (callers pass `align`);
    /// * the kernel may access everything mapped;
    /// * partition `i` may access regions owned by `Partition(i)`, and
    ///   `Shared` regions, subject to the region permission bits; every
    ///   other owner (kernel memory, other partitions, devices) is a
    ///   protection fault — that *is* spatial isolation.
    pub fn check(
        &self,
        ctx: AccessCtx,
        addr: Addr,
        len: u32,
        align: u32,
        kind: AccessKind,
    ) -> Result<(), MemFault> {
        self.locate(ctx, addr, len, align, kind).map(|_| ())
    }

    /// [`check`](Self::check) that also returns the index of the (single,
    /// by `contains_range`) region holding the range, so the access paths
    /// below pay for the linear region scan once instead of twice.
    fn locate(
        &self,
        ctx: AccessCtx,
        addr: Addr,
        len: u32,
        align: u32,
        kind: AccessKind,
    ) -> Result<usize, MemFault> {
        if align > 1 && !addr.is_multiple_of(align) {
            return Err(MemFault { addr, kind, fault: MemFaultKind::Misaligned });
        }
        let idx = self.region_index(addr, len).ok_or(MemFault {
            addr,
            kind,
            fault: MemFaultKind::Unmapped,
        })?;
        let region = &self.regions[idx];
        match ctx {
            AccessCtx::Kernel => Ok(idx),
            AccessCtx::Partition(p) => {
                let owner_ok = match region.owner {
                    Owner::Partition(o) => o == p,
                    Owner::Shared => true,
                    Owner::Kernel | Owner::Device => false,
                };
                let perm_ok = match kind {
                    AccessKind::Read => region.perms.read,
                    AccessKind::Write => region.perms.write,
                    AccessKind::Execute => region.perms.execute,
                };
                if owner_ok && perm_ok {
                    Ok(idx)
                } else {
                    Err(MemFault { addr, kind, fault: MemFaultKind::Protection })
                }
            }
        }
    }

    fn offset(&self, idx: usize, addr: Addr) -> usize {
        (addr - self.regions[idx].base) as usize
    }

    /// Reads `len` bytes after a successful [`check`](Self::check).
    pub fn read_bytes(&self, ctx: AccessCtx, addr: Addr, len: u32) -> Result<Vec<u8>, MemFault> {
        let idx = self.locate(ctx, addr, len, 1, AccessKind::Read)?;
        let off = self.offset(idx, addr);
        Ok(self.backing[idx].read(off, len as usize))
    }

    /// Reads `len` bytes, appending to `out` — the allocation-free
    /// counterpart of [`read_bytes`](Self::read_bytes) for callers that
    /// reuse a scratch buffer.
    pub fn read_bytes_into(
        &self,
        ctx: AccessCtx,
        addr: Addr,
        len: u32,
        out: &mut Vec<u8>,
    ) -> Result<(), MemFault> {
        let idx = self.locate(ctx, addr, len, 1, AccessKind::Read)?;
        let off = self.offset(idx, addr);
        self.backing[idx].read_into(off, len as usize, out);
        Ok(())
    }

    /// Single-byte load (used by NUL-terminated string reads; no `Vec`).
    pub fn read_u8(&self, ctx: AccessCtx, addr: Addr) -> Result<u8, MemFault> {
        let idx = self.locate(ctx, addr, 1, 1, AccessKind::Read)?;
        let off = self.offset(idx, addr);
        Ok(self.backing[idx].slice(off, 1)[0])
    }

    /// Borrows the readable bytes starting at `addr` within its region, up
    /// to `max` of them — the chunked primitive behind NUL-terminated
    /// string reads: permissions are uniform within a region, so one check
    /// covers the whole run, and a fault surfaces exactly where a one-byte
    /// read at `addr` would fault. Returns at least one byte when `max >=
    /// 1` (regions are non-empty and never cross the 4 GiB boundary).
    pub fn read_run(&self, ctx: AccessCtx, addr: Addr, max: u32) -> Result<&[u8], MemFault> {
        let idx = self.locate(ctx, addr, 1, 1, AccessKind::Read)?;
        let region = &self.regions[idx];
        let off = (addr - region.base) as usize;
        let avail = (region.size as u64 - off as u64).min(max as u64) as usize;
        Ok(self.backing[idx].slice(off, avail))
    }

    /// Writes bytes after a successful check.
    pub fn write_bytes(&mut self, ctx: AccessCtx, addr: Addr, data: &[u8]) -> Result<(), MemFault> {
        let len = data.len() as u32;
        let idx = self.locate(ctx, addr, len, 1, AccessKind::Write)?;
        let off = self.offset(idx, addr);
        self.backing[idx].write(off, data);
        Ok(())
    }

    /// Aligned 32-bit load.
    pub fn read_u32(&self, ctx: AccessCtx, addr: Addr) -> Result<u32, MemFault> {
        let idx = self.locate(ctx, addr, 4, 4, AccessKind::Read)?;
        let off = self.offset(idx, addr);
        let b = self.backing[idx].slice(off, 4);
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Aligned 32-bit store.
    pub fn write_u32(&mut self, ctx: AccessCtx, addr: Addr, v: u32) -> Result<(), MemFault> {
        let idx = self.locate(ctx, addr, 4, 4, AccessKind::Write)?;
        let off = self.offset(idx, addr);
        self.backing[idx].write(off, &v.to_be_bytes());
        Ok(())
    }

    /// Consecutive aligned 32-bit stores with a single whole-range check —
    /// byte-identical (values, byte order, dirty pages) to one
    /// [`write_u32`](Self::write_u32) per word, and since the range check
    /// proves every word lies in one region, the per-word stores are
    /// infallible: partial writes never happen, matching the per-word
    /// path's validate-first contract.
    pub fn write_u32s(
        &mut self,
        ctx: AccessCtx,
        addr: Addr,
        words: &[u32],
    ) -> Result<(), MemFault> {
        let idx = self.locate(ctx, addr, (words.len() * 4) as u32, 4, AccessKind::Write)?;
        let off = self.offset(idx, addr);
        let mem = &mut self.backing[idx];
        for (i, w) in words.iter().enumerate() {
            mem.write(off + i * 4, &w.to_be_bytes());
        }
        Ok(())
    }

    /// Aligned 64-bit load (big-endian, as on SPARC).
    pub fn read_u64(&self, ctx: AccessCtx, addr: Addr) -> Result<u64, MemFault> {
        let idx = self.locate(ctx, addr, 8, 8, AccessKind::Read)?;
        let off = self.offset(idx, addr);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.backing[idx].slice(off, 8));
        Ok(u64::from_be_bytes(buf))
    }

    /// Aligned 64-bit store.
    pub fn write_u64(&mut self, ctx: AccessCtx, addr: Addr, v: u64) -> Result<(), MemFault> {
        let idx = self.locate(ctx, addr, 8, 8, AccessKind::Write)?;
        let off = self.offset(idx, addr);
        self.backing[idx].write(off, &v.to_be_bytes());
        Ok(())
    }

    /// Copies `len` bytes between two mapped ranges, with both ranges
    /// checked in `ctx`. Used by `XM_memory_copy`.
    pub fn copy(&mut self, ctx: AccessCtx, dst: Addr, src: Addr, len: u32) -> Result<(), MemFault> {
        if len == 0 {
            return Ok(());
        }
        let data = self.read_bytes(ctx, src, len)?;
        self.write_bytes(ctx, dst, &data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let mut a = AddressSpace::new();
        a.add_region(Region {
            name: "kernel".into(),
            base: 0x4000_0000,
            size: 0x10000,
            owner: Owner::Kernel,
            perms: Perms::RW,
        })
        .unwrap();
        a.add_region(Region {
            name: "p0".into(),
            base: 0x4010_0000,
            size: 0x10000,
            owner: Owner::Partition(0),
            perms: Perms::RWX,
        })
        .unwrap();
        a.add_region(Region {
            name: "p1".into(),
            base: 0x4020_0000,
            size: 0x10000,
            owner: Owner::Partition(1),
            perms: Perms::RWX,
        })
        .unwrap();
        a.add_region(Region {
            name: "shared".into(),
            base: 0x4030_0000,
            size: 0x1000,
            owner: Owner::Shared,
            perms: Perms::RO,
        })
        .unwrap();
        a
    }

    #[test]
    fn rejects_overlaps_and_zero_size() {
        let mut a = space();
        let err = a
            .add_region(Region {
                name: "bad".into(),
                base: 0x4010_8000,
                size: 0x10000,
                owner: Owner::Shared,
                perms: Perms::RW,
            })
            .unwrap_err();
        assert!(err.contains("overlaps"));
        assert!(a
            .add_region(Region {
                name: "zero".into(),
                base: 0x5000_0000,
                size: 0,
                owner: Owner::Shared,
                perms: Perms::RW,
            })
            .is_err());
    }

    #[test]
    fn rejects_regions_past_4g() {
        let mut a = AddressSpace::new();
        assert!(a
            .add_region(Region {
                name: "wrap".into(),
                base: 0xFFFF_F000,
                size: 0x2000,
                owner: Owner::Kernel,
                perms: Perms::RW,
            })
            .is_err());
    }

    #[test]
    fn kernel_sees_everything_mapped() {
        let mut a = space();
        a.write_u32(AccessCtx::Kernel, 0x4000_0000, 0xAABBCCDD).unwrap();
        a.write_u32(AccessCtx::Kernel, 0x4010_0000, 1).unwrap();
        a.write_u32(AccessCtx::Kernel, 0x4030_0000, 2).unwrap(); // RO bypassed in supervisor
        assert_eq!(a.read_u32(AccessCtx::Kernel, 0x4000_0000).unwrap(), 0xAABBCCDD);
    }

    #[test]
    fn kernel_still_faults_on_unmapped() {
        let a = space();
        let f = a.read_u32(AccessCtx::Kernel, 0x9000_0000).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Unmapped);
        assert_eq!(f.trap(), Trap::DataAccessException { addr: 0x9000_0000 });
    }

    #[test]
    fn partition_spatial_isolation() {
        let mut a = space();
        // own memory: ok
        a.write_u32(AccessCtx::Partition(0), 0x4010_0000, 7).unwrap();
        // other partition: protection fault
        let f = a.write_u32(AccessCtx::Partition(0), 0x4020_0000, 7).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Protection);
        // kernel memory: protection fault
        let f = a.read_u32(AccessCtx::Partition(0), 0x4000_0000).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Protection);
    }

    #[test]
    fn shared_region_respects_perms() {
        let mut a = space();
        assert!(a.read_u32(AccessCtx::Partition(1), 0x4030_0000).is_ok());
        let f = a.write_u32(AccessCtx::Partition(1), 0x4030_0000, 1).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Protection);
    }

    #[test]
    fn misaligned_access_traps() {
        let a = space();
        let f = a.read_u32(AccessCtx::Kernel, 0x4000_0002).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Misaligned);
        assert_eq!(f.trap(), Trap::MemAddressNotAligned);
    }

    #[test]
    fn cross_region_range_faults() {
        let a = space();
        // Starts inside 'shared' (0x1000 long) but runs past its end.
        let f = a.read_bytes(AccessCtx::Kernel, 0x4030_0FFC, 16).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Unmapped);
    }

    #[test]
    fn u64_round_trip_big_endian() {
        let mut a = space();
        a.write_u64(AccessCtx::Kernel, 0x4000_0008, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(a.read_u64(AccessCtx::Kernel, 0x4000_0008).unwrap(), 0x1122_3344_5566_7788);
        // check big-endian byte order
        assert_eq!(a.read_u32(AccessCtx::Kernel, 0x4000_0008).unwrap(), 0x1122_3344);
        let f = a.read_u64(AccessCtx::Kernel, 0x4000_0004).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Misaligned);
    }

    #[test]
    fn copy_between_regions_checked() {
        let mut a = space();
        a.write_bytes(AccessCtx::Kernel, 0x4010_0000, b"hello").unwrap();
        a.copy(AccessCtx::Kernel, 0x4000_0100, 0x4010_0000, 5).unwrap();
        assert_eq!(a.read_bytes(AccessCtx::Kernel, 0x4000_0100, 5).unwrap(), b"hello");
        // a partition cannot exfiltrate kernel memory via copy
        let f = a.copy(AccessCtx::Partition(0), 0x4010_0000, 0x4000_0000, 4).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Protection);
        // zero-length copy never faults
        a.copy(AccessCtx::Partition(0), 0, 0, 0).unwrap();
    }

    #[test]
    fn region_at_lookup() {
        let a = space();
        assert_eq!(a.region_at(0x4010_1234).unwrap().name, "p0");
        assert!(a.region_at(0x1000).is_none());
    }
}
