//! Property tests for the machine substrate: the memory-protection model
//! and the timer block behave like their abstract specifications for all
//! inputs.

use leon3_sim::addrspace::{AccessCtx, AccessKind, AddressSpace, MemFaultKind, Owner, Perms, Region};
use leon3_sim::timer::GpTimer;
use proptest::prelude::*;

fn space() -> AddressSpace {
    let mut a = AddressSpace::new();
    a.add_region(Region {
        name: "kernel".into(),
        base: 0x4000_0000,
        size: 0x1_0000,
        owner: Owner::Kernel,
        perms: Perms::RW,
    })
    .unwrap();
    a.add_region(Region {
        name: "p0".into(),
        base: 0x4010_0000,
        size: 0x1_0000,
        owner: Owner::Partition(0),
        perms: Perms::RWX,
    })
    .unwrap();
    a.add_region(Region {
        name: "p1".into(),
        base: 0x4020_0000,
        size: 0x1_0000,
        owner: Owner::Partition(1),
        perms: Perms::RW,
    })
    .unwrap();
    a
}

/// The abstract protection predicate the implementation must match.
fn model_allows(p: u32, addr: u32, len: u32, align: u32) -> bool {
    if align > 1 && !addr.is_multiple_of(align) {
        return false;
    }
    let (base, size) = match p {
        0 => (0x4010_0000u64, 0x1_0000u64),
        _ => (0x4020_0000u64, 0x1_0000u64),
    };
    (addr as u64) >= base && (addr as u64 + len as u64) <= base + size
}

proptest! {
    /// The implementation's partition access check equals the abstract
    /// model for every address/length/partition.
    #[test]
    fn partition_check_matches_model(
        p in 0u32..2,
        addr in proptest::sample::select(vec![
            0u32, 1, 0x3FFF_FFFF,
            0x4000_0000, 0x4000_8000,
            0x4010_0000, 0x4010_8000, 0x4010_FFFF, 0x4011_0000,
            0x4020_0000, 0x4020_FFFC, 0x4021_0000,
            0x8000_0000, 0xFFFF_FFFC,
        ]),
        off in 0u32..16,
        len in prop_oneof![Just(1u32), Just(2), Just(4), Just(8), Just(64)],
        align in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
    ) {
        let a = space();
        let addr = addr.wrapping_add(off);
        let got = a.check(AccessCtx::Partition(p), addr, len, align, AccessKind::Read).is_ok();
        let want = model_allows(p, addr, len, align);
        prop_assert_eq!(got, want, "p{} addr {:#x} len {} align {}", p, addr, len, align);
    }

    /// Whatever a partition writes into its own memory reads back
    /// identically, and never leaks into the other partition's region.
    #[test]
    fn write_read_round_trip(
        off in 0u32..0xFF00,
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut a = space();
        let addr = 0x4010_0000 + off;
        a.write_bytes(AccessCtx::Partition(0), addr, &data).unwrap();
        let back = a.read_bytes(AccessCtx::Partition(0), addr, data.len() as u32).unwrap();
        prop_assert_eq!(&back, &data);
        // The other partition's first bytes are untouched zeros.
        let other = a.read_bytes(AccessCtx::Kernel, 0x4020_0000, 16).unwrap();
        prop_assert!(other.iter().all(|&b| b == 0));
    }

    /// Cross-partition accesses always fault with a protection error.
    #[test]
    fn cross_partition_always_protection_fault(off in 0u32..0xFFFC) {
        let a = space();
        let f = a
            .read_bytes(AccessCtx::Partition(0), 0x4020_0000 + off, 1)
            .unwrap_err();
        prop_assert_eq!(f.fault, MemFaultKind::Protection);
    }

    /// Timer expiries are delivered exactly `elapsed / period` times (+1
    /// for the initial expiry), regardless of how the advance is chunked.
    #[test]
    fn periodic_timer_count_is_chunking_independent(
        period in 1u64..500,
        chunks in proptest::collection::vec(1u64..5_000, 1..12),
    ) {
        let mut t1 = GpTimer::new(1, 6);
        t1.arm(0, period, Some(period));
        let total: u64 = chunks.iter().sum();
        // one big advance
        let mut t2 = t1.clone();
        let big = t2.advance_to(total);
        // chunked advances
        let mut fired = 0usize;
        let mut now = 0u64;
        for c in chunks {
            now += c;
            fired += t1.advance_to(now).len();
        }
        prop_assert_eq!(fired, big.len());
        prop_assert_eq!(fired as u64, total / period);
    }

    /// `next_expiry` is always the minimum armed expiry.
    #[test]
    fn next_expiry_is_minimum(exp in proptest::collection::vec(1u64..10_000, 1..4)) {
        let mut t = GpTimer::new(4, 6);
        for (i, &e) in exp.iter().enumerate() {
            t.arm(i, e, None);
        }
        prop_assert_eq!(t.next_expiry(), exp.iter().copied().min());
    }
}
