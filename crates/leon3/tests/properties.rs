//! Property tests for the machine substrate: the memory-protection model
//! and the timer block behave like their abstract specifications for all
//! inputs. Randomised via the deterministic `testkit` harness.

use leon3_sim::addrspace::{
    AccessCtx, AccessKind, AddressSpace, MemFaultKind, Owner, Perms, Region,
};
use leon3_sim::machine::{Machine, MachineConfig};
use leon3_sim::timer::GpTimer;

fn space() -> AddressSpace {
    let mut a = AddressSpace::new();
    a.add_region(Region {
        name: "kernel".into(),
        base: 0x4000_0000,
        size: 0x1_0000,
        owner: Owner::Kernel,
        perms: Perms::RW,
    })
    .unwrap();
    a.add_region(Region {
        name: "p0".into(),
        base: 0x4010_0000,
        size: 0x1_0000,
        owner: Owner::Partition(0),
        perms: Perms::RWX,
    })
    .unwrap();
    a.add_region(Region {
        name: "p1".into(),
        base: 0x4020_0000,
        size: 0x1_0000,
        owner: Owner::Partition(1),
        perms: Perms::RW,
    })
    .unwrap();
    a
}

/// The abstract protection predicate the implementation must match.
fn model_allows(p: u32, addr: u32, len: u32, align: u32) -> bool {
    if align > 1 && !addr.is_multiple_of(align) {
        return false;
    }
    let (base, size) = match p {
        0 => (0x4010_0000u64, 0x1_0000u64),
        _ => (0x4020_0000u64, 0x1_0000u64),
    };
    (addr as u64) >= base && (addr as u64 + len as u64) <= base + size
}

/// The implementation's partition access check equals the abstract
/// model for every address/length/partition.
#[test]
fn partition_check_matches_model() {
    const ADDRS: [u32; 14] = [
        0,
        1,
        0x3FFF_FFFF,
        0x4000_0000,
        0x4000_8000,
        0x4010_0000,
        0x4010_8000,
        0x4010_FFFF,
        0x4011_0000,
        0x4020_0000,
        0x4020_FFFC,
        0x4021_0000,
        0x8000_0000,
        0xFFFF_FFFC,
    ];
    const LENS: [u32; 5] = [1, 2, 4, 8, 64];
    const ALIGNS: [u32; 4] = [1, 2, 4, 8];
    testkit::check("partition_check_matches_model", 512, |rng| {
        let p = rng.range(0, 2) as u32;
        let addr = rng.pick(&ADDRS).wrapping_add(rng.range(0, 16) as u32);
        let len = *rng.pick(&LENS);
        let align = *rng.pick(&ALIGNS);
        let a = space();
        let got = a.check(AccessCtx::Partition(p), addr, len, align, AccessKind::Read).is_ok();
        let want = model_allows(p, addr, len, align);
        assert_eq!(got, want, "p{p} addr {addr:#x} len {len} align {align}");
    });
}

/// Whatever a partition writes into its own memory reads back
/// identically, and never leaks into the other partition's region.
#[test]
fn write_read_round_trip() {
    testkit::check("write_read_round_trip", 256, |rng| {
        let off = rng.range_u64(0, 0xFF00) as u32;
        let data = rng.bytes(1, 64);
        let mut a = space();
        let addr = 0x4010_0000 + off;
        a.write_bytes(AccessCtx::Partition(0), addr, &data).unwrap();
        let back = a.read_bytes(AccessCtx::Partition(0), addr, data.len() as u32).unwrap();
        assert_eq!(back, data);
        // The other partition's first bytes are untouched zeros.
        let other = a.read_bytes(AccessCtx::Kernel, 0x4020_0000, 16).unwrap();
        assert!(other.iter().all(|&b| b == 0));
    });
}

/// Cross-partition accesses always fault with a protection error.
#[test]
fn cross_partition_always_protection_fault() {
    testkit::check("cross_partition_always_protection_fault", 256, |rng| {
        let off = rng.range_u64(0, 0xFFFC) as u32;
        let a = space();
        let f = a.read_bytes(AccessCtx::Partition(0), 0x4020_0000 + off, 1).unwrap_err();
        assert_eq!(f.fault, MemFaultKind::Protection);
    });
}

/// Timer expiries are delivered exactly `elapsed / period` times (+1
/// for the initial expiry), regardless of how the advance is chunked.
#[test]
fn periodic_timer_count_is_chunking_independent() {
    testkit::check("periodic_timer_count_is_chunking_independent", 256, |rng| {
        let period = rng.range_u64(1, 500);
        let chunks = rng.vec_of(1, 12, |r| r.range_u64(1, 5_000));
        let mut t1 = GpTimer::new(1, 6);
        t1.arm(0, period, Some(period));
        let total: u64 = chunks.iter().sum();
        // one big advance
        let mut t2 = t1.clone();
        let big = t2.advance_to(total);
        // chunked advances
        let mut fired = 0usize;
        let mut now = 0u64;
        for c in chunks {
            now += c;
            fired += t1.advance_to(now).len();
        }
        assert_eq!(fired, big.len());
        assert_eq!(fired as u64, total / period);
    });
}

/// One machine advance to `t` is indistinguishable from any partition of
/// `[now, t]` into smaller advances: same clock, same health, same
/// pending interrupt register, same per-unit fired counts and re-armed
/// expiries, same total expiry count. This is the invariant the kernel's
/// event-horizon shortcut relies on when it collapses advances, and it
/// must survive closed-form expiry batching. (Workloads stay below the
/// trap-storm threshold — storms are per-advance by design, so chunking
/// is *supposed* to change them; see `storm_threshold_boundary`.)
#[test]
fn machine_advance_is_split_invariant() {
    testkit::check("machine_advance_is_split_invariant", 256, |rng| {
        let mut big = Machine::new(MachineConfig::default());
        let mut chunked = Machine::new(MachineConfig::default());
        // Periods >= 3 keep each advance's total (2 units) under the
        // 4096-expiry storm threshold for the <= 5000 us horizon below.
        for unit in 0..2 {
            if rng.range(0, 2) == 1 {
                let start = rng.range_u64(1, 400);
                let period = if rng.range(0, 2) == 1 { Some(rng.range_u64(3, 500)) } else { None };
                big.timers.arm(unit, start, period);
                chunked.timers.arm(unit, start, period);
            }
        }
        let chunks = rng.vec_of(1, 12, |r| r.range_u64(1, 500));
        let total: u64 = chunks.iter().sum();
        let one_jump = big.advance_to(total).len();
        let mut split_total = 0usize;
        let mut now = 0u64;
        for c in chunks {
            now += c;
            split_total += chunked.advance_to(now).len();
        }
        assert_eq!(big.now(), chunked.now());
        assert_eq!(big.health(), chunked.health());
        assert_eq!(big.irqmp.pending_reg(), chunked.irqmp.pending_reg());
        assert_eq!(one_jump, split_total);
        for unit in 0..2 {
            let (b, c) = (big.timers.unit(unit).unwrap(), chunked.timers.unit(unit).unwrap());
            assert_eq!(b.fired, c.fired, "unit {unit} fired");
            assert_eq!(b.expiry, c.expiry, "unit {unit} expiry");
        }
        assert_eq!(big.timers.next_expiry(), chunked.timers.next_expiry());
    });
}

/// Storm detection under closed-form batching sits exactly on the old
/// boundary: 4095 expiries in one advance survive, 4096 crash.
#[test]
fn storm_threshold_boundary() {
    let mut survivor = Machine::new(MachineConfig::default());
    survivor.timers.arm(0, 1, Some(1));
    assert_eq!(survivor.advance_to(4095).len(), 4095);
    assert!(survivor.is_running(), "4095 expiries is below the threshold");

    let mut crashed = Machine::new(MachineConfig::default());
    crashed.timers.arm(0, 1, Some(1));
    assert_eq!(crashed.advance_to(4096).len(), 4096);
    assert!(!crashed.is_running(), "4096 expiries in one advance is a trap storm");
}

/// `next_expiry` is always the minimum armed expiry.
#[test]
fn next_expiry_is_minimum() {
    testkit::check("next_expiry_is_minimum", 256, |rng| {
        let exp = rng.vec_of(1, 4, |r| r.range_u64(1, 10_000));
        let mut t = GpTimer::new(4, 6);
        for (i, &e) in exp.iter().enumerate() {
            t.arm(i, e, None);
        }
        assert_eq!(t.next_expiry(), exp.iter().copied().min());
    });
}
