//! Typed **API Header XML** document (paper Fig. 2).
//!
//! The API header lists all hypercalls of the separation kernel under test
//! together with the data type of every parameter. The on-disk format is:
//!
//! ```xml
//! <ApiHeader Kernel="XtratuM" Version="3.x">
//!   <Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO">
//!     <ParametersList>
//!       <Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"/>
//!       ...
//!     </ParametersList>
//!   </Function>
//!   ...
//! </ApiHeader>
//! ```

use crate::error::SpecError;
use crate::node::Element;
use crate::parse::parse_document;
use crate::write::to_string_pretty;

/// One parameter of a hypercall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name as it appears in the kernel API, e.g. `partitionId`.
    pub name: String,
    /// Data type name, e.g. `xm_s32_t` (keys into the Data Type XML).
    pub ty: String,
    /// Whether the parameter is a pointer (`IsPointer="YES"`).
    pub is_pointer: bool,
}

/// One hypercall entry in the API header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    /// Hypercall name, e.g. `XM_set_timer`.
    pub name: String,
    /// Return type name, e.g. `xm_s32_t`.
    pub return_type: String,
    /// Whether the return value is a pointer.
    pub return_is_pointer: bool,
    /// Ordered parameter list (empty for parameter-less hypercalls).
    pub params: Vec<ParamSpec>,
}

/// The whole API header document.
///
/// ```
/// use specxml::ApiHeaderDoc;
/// let doc = ApiHeaderDoc::from_xml(r#"
///   <ApiHeader Kernel="XtratuM" Version="3.x">
///     <Function Name="XM_reset_system" ReturnType="xm_s32_t" IsPointer="NO">
///       <ParametersList>
///         <Parameter Name="mode" Type="xm_u32_t" IsPointer="NO"/>
///       </ParametersList>
///     </Function>
///   </ApiHeader>"#).unwrap();
/// let f = doc.function("XM_reset_system").unwrap();
/// assert_eq!(f.params[0].ty, "xm_u32_t");
/// assert_eq!(doc, ApiHeaderDoc::from_xml(&doc.to_xml()).unwrap()); // round-trip
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApiHeaderDoc {
    /// Kernel name attribute, e.g. `XtratuM`.
    pub kernel: String,
    /// Free-form kernel version attribute.
    pub version: String,
    /// All hypercalls, in document order.
    pub functions: Vec<FunctionSpec>,
}

fn parse_yes_no(element: &str, attr: &'static str, v: &str) -> Result<bool, SpecError> {
    match v {
        "YES" => Ok(true),
        "NO" => Ok(false),
        _ => Err(SpecError::BadAttrValue { element: element.into(), attr, value: v.into() }),
    }
}

fn req_attr<'a>(el: &'a Element, attr: &'static str) -> Result<&'a str, SpecError> {
    el.attr(attr).ok_or_else(|| SpecError::MissingAttr { element: el.name.clone(), attr })
}

impl ApiHeaderDoc {
    /// Parses an API header document from XML text.
    pub fn from_xml(src: &str) -> Result<Self, SpecError> {
        let root = parse_document(src)?;
        Self::from_element(&root)
    }

    /// Interprets an already-parsed element tree.
    pub fn from_element(root: &Element) -> Result<Self, SpecError> {
        if root.name != "ApiHeader" {
            return Err(SpecError::WrongRoot { expected: "ApiHeader", found: root.name.clone() });
        }
        let mut doc = ApiHeaderDoc {
            kernel: root.attr("Kernel").unwrap_or_default().to_string(),
            version: root.attr("Version").unwrap_or_default().to_string(),
            functions: Vec::new(),
        };
        for f in root.find_all("Function") {
            let name = req_attr(f, "Name")?.to_string();
            let return_type = req_attr(f, "ReturnType")?.to_string();
            let return_is_pointer =
                parse_yes_no(&f.name, "IsPointer", f.attr("IsPointer").unwrap_or("NO"))?;
            let mut params = Vec::new();
            if let Some(pl) = f.find("ParametersList") {
                for p in pl.find_all("Parameter") {
                    params.push(ParamSpec {
                        name: req_attr(p, "Name")?.to_string(),
                        ty: req_attr(p, "Type")?.to_string(),
                        is_pointer: parse_yes_no(
                            &p.name,
                            "IsPointer",
                            p.attr("IsPointer").unwrap_or("NO"),
                        )?,
                    });
                }
            }
            doc.functions.push(FunctionSpec { name, return_type, return_is_pointer, params });
        }
        Ok(doc)
    }

    /// Builds the element tree for this document.
    pub fn to_element(&self) -> Element {
        let mut root = Element::new("ApiHeader")
            .with_attr("Kernel", &self.kernel)
            .with_attr("Version", &self.version);
        for f in &self.functions {
            let mut fe = Element::new("Function")
                .with_attr("Name", &f.name)
                .with_attr("ReturnType", &f.return_type)
                .with_attr("IsPointer", if f.return_is_pointer { "YES" } else { "NO" });
            let mut pl = Element::new("ParametersList");
            for p in &f.params {
                pl = pl.with_child(
                    Element::new("Parameter")
                        .with_attr("Name", &p.name)
                        .with_attr("Type", &p.ty)
                        .with_attr("IsPointer", if p.is_pointer { "YES" } else { "NO" }),
                );
            }
            fe = fe.with_child(pl);
            root = root.with_child(fe);
        }
        root
    }

    /// Serializes to pretty XML.
    pub fn to_xml(&self) -> String {
        to_string_pretty(&self.to_element())
    }

    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<&FunctionSpec> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_doc() -> ApiHeaderDoc {
        ApiHeaderDoc {
            kernel: "XtratuM".into(),
            version: "3.x".into(),
            functions: vec![FunctionSpec {
                name: "XM_reset_partition".into(),
                return_type: "xm_s32_t".into(),
                return_is_pointer: false,
                params: vec![
                    ParamSpec {
                        name: "partitionId".into(),
                        ty: "xm_s32_t".into(),
                        is_pointer: false,
                    },
                    ParamSpec {
                        name: "resetMode".into(),
                        ty: "xm_u32_t".into(),
                        is_pointer: false,
                    },
                    ParamSpec { name: "status".into(), ty: "xm_u32_t".into(), is_pointer: false },
                ],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let doc = fig2_doc();
        let xml = doc.to_xml();
        let back = ApiHeaderDoc::from_xml(&xml).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_handwritten_fig2_style() {
        let src = r#"<ApiHeader Kernel="XtratuM" Version="3.x">
          <Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO">
            <ParametersList>
              <Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"/>
              <Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"/>
              <Parameter Name="status" Type="xm_u32_t" IsPointer="NO" />
            </ParametersList>
          </Function>
        </ApiHeader>"#;
        let doc = ApiHeaderDoc::from_xml(src).unwrap();
        assert_eq!(doc.functions.len(), 1);
        let f = doc.function("XM_reset_partition").unwrap();
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1].name, "resetMode");
        assert_eq!(f.params[1].ty, "xm_u32_t");
        assert!(!f.return_is_pointer);
    }

    #[test]
    fn parameterless_function_round_trips() {
        let doc = ApiHeaderDoc {
            kernel: "XM".into(),
            version: "1".into(),
            functions: vec![FunctionSpec {
                name: "XM_halt_system".into(),
                return_type: "xm_s32_t".into(),
                return_is_pointer: false,
                params: vec![],
            }],
        };
        let back = ApiHeaderDoc::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(doc, back);
        assert!(back.functions[0].params.is_empty());
    }

    #[test]
    fn pointer_flags_parse() {
        let src = r#"<ApiHeader Kernel="XM" Version="1">
          <Function Name="XM_multicall" ReturnType="xm_s32_t" IsPointer="NO">
            <ParametersList>
              <Parameter Name="startAddr" Type="xmAddress_t" IsPointer="YES"/>
              <Parameter Name="endAddr" Type="xmAddress_t" IsPointer="YES"/>
            </ParametersList>
          </Function>
        </ApiHeader>"#;
        let doc = ApiHeaderDoc::from_xml(src).unwrap();
        assert!(doc.functions[0].params.iter().all(|p| p.is_pointer));
    }

    #[test]
    fn wrong_root_rejected() {
        let e = ApiHeaderDoc::from_xml("<Nope/>").unwrap_err();
        assert!(matches!(e, SpecError::WrongRoot { .. }));
    }

    #[test]
    fn missing_name_rejected() {
        let e = ApiHeaderDoc::from_xml(
            r#"<ApiHeader Kernel="x" Version="1"><Function ReturnType="t"/></ApiHeader>"#,
        )
        .unwrap_err();
        assert!(matches!(e, SpecError::MissingAttr { attr: "Name", .. }));
    }

    #[test]
    fn bad_is_pointer_rejected() {
        let e = ApiHeaderDoc::from_xml(
            r#"<ApiHeader Kernel="x" Version="1">
                 <Function Name="f" ReturnType="t" IsPointer="MAYBE"/>
               </ApiHeader>"#,
        )
        .unwrap_err();
        assert!(matches!(e, SpecError::BadAttrValue { attr: "IsPointer", .. }));
    }

    #[test]
    fn function_lookup() {
        let doc = fig2_doc();
        assert!(doc.function("XM_reset_partition").is_some());
        assert!(doc.function("XM_missing").is_none());
    }
}
