//! Pretty-printing serializer for XML trees.
//!
//! Output convention matches the paper's figures: two-space indentation,
//! attributes on one line, leaf elements whose only child is a single text
//! node are written inline (`<Value>16</Value>`).

use crate::node::{Element, Node};

/// Serializes a whole document (XML declaration + root element).
pub fn to_string_pretty(root: &Element) -> String {
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_element(root, 0, &mut out);
    out.push('\n');
    out
}

/// Serializes a single element (no declaration), e.g. for embedding.
pub fn element_to_string(root: &Element) -> String {
    let mut out = String::new();
    write_element(root, 0, &mut out);
    out
}

fn write_element(el: &Element, depth: usize, out: &mut String) {
    indent(depth, out);
    out.push('<');
    out.push_str(&el.name);
    for (k, v) in &el.attrs {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        escape_attr(v, out);
        out.push('"');
    }

    if el.children.is_empty() {
        out.push_str("/>");
        return;
    }

    // Inline form for a single text child.
    if el.children.len() == 1 {
        if let Node::Text(t) = &el.children[0] {
            out.push('>');
            escape_text(t, out);
            out.push_str("</");
            out.push_str(&el.name);
            out.push('>');
            return;
        }
    }

    out.push('>');
    for child in &el.children {
        out.push('\n');
        match child {
            Node::Element(c) => write_element(c, depth + 1, out),
            Node::Text(t) => {
                indent(depth + 1, out);
                escape_text(t.trim(), out);
            }
            Node::Comment(c) => {
                indent(depth + 1, out);
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
        }
    }
    out.push('\n');
    indent(depth, out);
    out.push_str("</");
    out.push_str(&el.name);
    out.push('>');
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
}

fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_document;

    #[test]
    fn leaf_elements_are_inline() {
        let el = Element::new("Value").with_text("4294967295");
        assert_eq!(element_to_string(&el), "<Value>4294967295</Value>");
    }

    #[test]
    fn empty_elements_self_close() {
        let el = Element::new("Parameter").with_attr("Name", "p");
        assert_eq!(element_to_string(&el), "<Parameter Name=\"p\"/>");
    }

    #[test]
    fn nested_pretty_output() {
        let el = Element::new("TestValues")
            .with_child(Element::new("Value").with_text("0"))
            .with_child(Element::new("Value").with_text("1"));
        let s = element_to_string(&el);
        assert_eq!(s, "<TestValues>\n  <Value>0</Value>\n  <Value>1</Value>\n</TestValues>");
    }

    #[test]
    fn escaping_round_trips() {
        let el = Element::new("V").with_attr("a", "x\"<&>'y").with_text("a<b&c>d");
        let s = to_string_pretty(&el);
        let back = parse_document(&s).unwrap();
        assert_eq!(back.attr("a"), Some("x\"<&>'y"));
        assert_eq!(back.text(), "a<b&c>d");
    }

    #[test]
    fn document_round_trip_structural() {
        let src = r#"<Function Name="XM_set_timer" ReturnType="xm_s32_t" IsPointer="NO">
  <ParametersList>
    <Parameter Name="clockId" Type="xm_u32_t" IsPointer="NO"/>
    <Parameter Name="absTime" Type="xmTime_t" IsPointer="NO"/>
    <Parameter Name="interval" Type="xmTime_t" IsPointer="NO"/>
  </ParametersList>
</Function>"#;
        let tree = parse_document(src).unwrap();
        let printed = to_string_pretty(&tree);
        let reparsed = parse_document(&printed).unwrap();
        assert_eq!(tree, reparsed);
    }

    #[test]
    fn comments_preserved() {
        let tree = parse_document("<a><!-- keep me --><b/></a>").unwrap();
        let printed = to_string_pretty(&tree);
        assert!(printed.contains("<!-- keep me -->"), "{printed}");
        assert_eq!(parse_document(&printed).unwrap(), tree);
    }
}
