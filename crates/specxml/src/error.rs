//! Error types for XML parsing and typed-document decoding.

use std::fmt;

/// A low-level XML syntax error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        Self { line, col, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Errors raised when interpreting a parsed XML tree as one of the typed
/// spec documents (API header / data types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Underlying XML was malformed.
    Xml(ParseError),
    /// The root element had an unexpected name.
    WrongRoot { expected: &'static str, found: String },
    /// A required attribute was missing on an element.
    MissingAttr { element: String, attr: &'static str },
    /// An element that must appear was absent.
    MissingChild { element: String, child: &'static str },
    /// An attribute had a value outside its allowed set.
    BadAttrValue { element: String, attr: &'static str, value: String },
    /// Free-form structural problem.
    Structure(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Xml(e) => write!(f, "{e}"),
            SpecError::WrongRoot { expected, found } => {
                write!(f, "expected root element <{expected}>, found <{found}>")
            }
            SpecError::MissingAttr { element, attr } => {
                write!(f, "element <{element}> is missing required attribute '{attr}'")
            }
            SpecError::MissingChild { element, child } => {
                write!(f, "element <{element}> is missing required child <{child}>")
            }
            SpecError::BadAttrValue { element, attr, value } => {
                write!(f, "element <{element}> attribute '{attr}' has invalid value '{value}'")
            }
            SpecError::Structure(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ParseError> for SpecError {
    fn from(e: ParseError) -> Self {
        SpecError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_includes_position() {
        let e = ParseError::new(3, 14, "unexpected '<'");
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("unexpected '<'"), "{s}");
    }

    #[test]
    fn spec_error_display_variants() {
        let cases: Vec<(SpecError, &str)> = vec![
            (
                SpecError::WrongRoot { expected: "ApiHeader", found: "Nope".into() },
                "expected root element <ApiHeader>",
            ),
            (
                SpecError::MissingAttr { element: "Function".into(), attr: "Name" },
                "missing required attribute 'Name'",
            ),
            (
                SpecError::MissingChild { element: "DataType".into(), child: "TestValues" },
                "missing required child <TestValues>",
            ),
            (
                SpecError::BadAttrValue {
                    element: "Parameter".into(),
                    attr: "IsPointer",
                    value: "MAYBE".into(),
                },
                "invalid value 'MAYBE'",
            ),
            (SpecError::Structure("boom".into()), "boom"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn parse_error_converts_to_spec_error() {
        let pe = ParseError::new(1, 1, "bad");
        let se: SpecError = pe.clone().into();
        assert_eq!(se, SpecError::Xml(pe));
    }
}
