//! Recursive-descent parser for the XML subset used by the spec files.
//!
//! Supported syntax: one root element, nested elements with attributes
//! (single- or double-quoted), text content with the five predefined
//! entities (`&lt; &gt; &amp; &apos; &quot;`) and decimal/hex character
//! references, comments, and an optional leading `<?xml ...?>` declaration.
//! DOCTYPE, CDATA, processing instructions and namespaces are rejected —
//! the toolset's spec files never use them, and silence would be riskier
//! than an error.

use crate::error::ParseError;
use crate::node::{Element, Node};

/// Parses a complete XML document, returning its root element.
///
/// ```
/// let root = specxml::parse_document(
///     r#"<DataType Name="xm_u32_t"><BasicType>unsigned int</BasicType></DataType>"#,
/// ).unwrap();
/// assert_eq!(root.name, "DataType");
/// assert_eq!(root.attr("Name"), Some("xm_u32_t"));
/// assert_eq!(root.find("BasicType").unwrap().text(), "unsigned int");
/// ```
pub fn parse_document(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser::new(input);
    p.skip_bom();
    p.skip_misc()?;
    p.maybe_decl()?;
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col, msg)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        match self.bump() {
            Some(b) if b == expected => Ok(()),
            Some(b) => {
                Err(self.err(format!("expected '{}', found '{}'", expected as char, b as char)))
            }
            None => Err(self.err(format!("expected '{}', found end of input", expected as char))),
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn skip_bom(&mut self) {
        if self.bytes[self.pos..].starts_with(&[0xEF, 0xBB, 0xBF]) {
            self.pos += 3;
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skips whitespace and comments between markup at the document level.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn maybe_decl(&mut self) -> Result<(), ParseError> {
        if self.starts_with("<?xml") {
            self.eat_str("<?xml")?;
            while !self.starts_with("?>") {
                if self.bump().is_none() {
                    return Err(self.err("unterminated xml declaration"));
                }
            }
            self.eat_str("?>")?;
        } else if self.starts_with("<?") {
            return Err(self.err("processing instructions are not supported"));
        }
        Ok(())
    }

    fn comment(&mut self) -> Result<Node, ParseError> {
        self.eat_str("<!--")?;
        let start = self.pos;
        while !self.starts_with("-->") {
            if self.bump().is_none() {
                return Err(self.err("unterminated comment"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("comment is not valid utf-8"))?
            .to_string();
        self.eat_str("-->")?;
        Ok(Node::Comment(text))
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':'))
        {
            self.bump();
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_string())
    }

    fn attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some(b'<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(b'&') => out.push(self.entity()?),
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != quote && b != b'&' && b != b'<') {
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("attribute value is not valid utf-8"))?,
                    );
                }
            }
        }
    }

    fn entity(&mut self) -> Result<char, ParseError> {
        self.eat(b'&')?;
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.bump();
            if self.pos - start > 10 {
                return Err(self.err("entity reference too long"));
            }
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap().to_string();
        self.eat(b';')?;
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("bad character reference '&{name};'")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid character code {code}")))
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err(format!("bad character reference '&{name};'")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid character code {code}")))
            }
            _ => Err(self.err(format!("unknown entity '&{name};'"))),
        }
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.eat(b'<')?;
        let name = self.name()?;
        let mut el = Element::new(&name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.eat(b'>')?;
                    return Ok(el); // self-closing
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let aname = self.name()?;
                    if el.attrs.iter().any(|(k, _)| *k == aname) {
                        return Err(self.err(format!("duplicate attribute '{aname}'")));
                    }
                    self.skip_ws();
                    self.eat(b'=')?;
                    self.skip_ws();
                    let v = self.attr_value()?;
                    el.attrs.push((aname, v));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content until matching close tag.
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated element <{name}>"))),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        let c = self.comment()?;
                        el.children.push(c);
                    } else if self.peek2() == Some(b'/') {
                        self.eat_str("</")?;
                        let close = self.name()?;
                        if close != name {
                            return Err(self.err(format!(
                                "mismatched close tag: expected </{name}>, found </{close}>"
                            )));
                        }
                        self.skip_ws();
                        self.eat(b'>')?;
                        return Ok(el);
                    } else if self.starts_with("<!") || self.starts_with("<?") {
                        return Err(self.err("DOCTYPE/CDATA/PI are not supported"));
                    } else {
                        let child = self.element()?;
                        el.children.push(Node::Element(child));
                    }
                }
                Some(_) => {
                    let text = self.text_run()?;
                    if !text.is_empty() {
                        el.children.push(Node::Text(text));
                    }
                }
            }
        }
    }

    /// Reads character data up to the next `<`. Pure-whitespace runs are
    /// returned as empty strings (ignorable formatting whitespace).
    fn text_run(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => break,
                Some(b'&') => out.push(self.entity()?),
                Some(_) => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'<' && b != b'&') {
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("text is not valid utf-8"))?,
                    );
                }
            }
        }
        if out.trim().is_empty() {
            Ok(String::new())
        } else {
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig3_example() {
        // Reproduced from the paper's Fig. 3 (XtratuM case study).
        let src = r#"
<DataType Name="xm_u32_t">
  <BasicType>unsigned int</BasicType>
  <TestValues>
    <Value>0</Value>
    <Value>1</Value>
    <Value>2</Value>
    <Value>16</Value>
    <Value>4294967295</Value>
  </TestValues>
</DataType>"#;
        let root = parse_document(src).unwrap();
        assert_eq!(root.name, "DataType");
        assert_eq!(root.attr("Name"), Some("xm_u32_t"));
        assert_eq!(root.find("BasicType").unwrap().text(), "unsigned int");
        let values: Vec<String> =
            root.find("TestValues").unwrap().find_all("Value").map(|v| v.text()).collect();
        assert_eq!(values, ["0", "1", "2", "16", "4294967295"]);
    }

    #[test]
    fn parses_fig2_example() {
        // Reproduced from the paper's Fig. 2.
        let src = r#"<Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO">
  <ParametersList>
    <Parameter Name="partitionId" Type="xm_s32_t" IsPointer="NO"/>
    <Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"/>
    <Parameter Name="status" Type="xm_u32_t" IsPointer="NO" />
  </ParametersList>
</Function>"#;
        let root = parse_document(src).unwrap();
        assert_eq!(root.name, "Function");
        assert_eq!(root.attr("IsPointer"), Some("NO"));
        let params: Vec<&str> = root
            .find("ParametersList")
            .unwrap()
            .find_all("Parameter")
            .map(|p| p.attr("Name").unwrap())
            .collect();
        assert_eq!(params, ["partitionId", "resetMode", "status"]);
    }

    #[test]
    fn declaration_and_comments_ok() {
        let src =
            "<?xml version=\"1.0\"?>\n<!-- spec -->\n<A><!-- inner --><B/></A>\n<!-- after -->";
        let root = parse_document(src).unwrap();
        assert_eq!(root.name, "A");
        assert_eq!(root.child_elements().count(), 1);
    }

    #[test]
    fn entities_resolved() {
        let root = parse_document("<V a='&lt;&amp;&gt;'>x &quot;y&quot; &#65;&#x42;</V>").unwrap();
        assert_eq!(root.attr("a"), Some("<&>"));
        assert_eq!(root.text(), "x \"y\" AB");
    }

    #[test]
    fn self_closing_and_nested() {
        let root = parse_document("<a><b/><c><d/></c></a>").unwrap();
        assert_eq!(root.child_elements().count(), 2);
        assert_eq!(root.find("c").unwrap().find("d").unwrap().name, "d");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let e = parse_document("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(parse_document("<a/><b/>").is_err());
    }

    #[test]
    fn rejects_duplicate_attrs() {
        let e = parse_document("<a x='1' x='2'/>").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn rejects_doctype_and_cdata() {
        assert!(parse_document("<!DOCTYPE a><a/>").is_err());
        assert!(parse_document("<a><![CDATA[x]]></a>").is_err());
    }

    #[test]
    fn rejects_unknown_entity() {
        assert!(parse_document("<a>&nope;</a>").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a b=>").is_err());
        assert!(parse_document("<a b='x>").is_err());
        assert!(parse_document("<!-- never closed").is_err());
    }

    #[test]
    fn error_position_is_tracked() {
        let e = parse_document("<a>\n  <b x='1' x='2'/>\n</a>").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let root = parse_document("<a>\n   <b/>\n</a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn single_quoted_attrs() {
        let root = parse_document("<a name='v a l'/>").unwrap();
        assert_eq!(root.attr("name"), Some("v a l"));
    }
}
