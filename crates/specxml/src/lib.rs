//! `specxml` — a minimal, dependency-free XML subset used by the robustness
//! testing toolset to describe kernel APIs and data-type test dictionaries.
//!
//! The paper's toolset (Section III.B) is driven by two kernel-specific XML
//! files, a technique borrowed from Critical Software's Xception toolset:
//!
//! * the **API Header XML** (Fig. 2) lists every hypercall with its
//!   parameter names and data types;
//! * the **Data Type XML** (Fig. 3) lists the test values associated with
//!   each data type.
//!
//! This crate implements:
//!
//! * a small XML parser/writer ([`parse`], [`node`], [`mod@write`]) covering the
//!   subset those documents need (elements, attributes, text, comments, an
//!   optional XML declaration, and the five predefined entities);
//! * typed documents: [`api::ApiHeaderDoc`] and [`datatypes::DataTypeDoc`]
//!   with lossless round-trips (property-tested).
//!
//! The parser is deliberately strict: unknown syntax is an error rather than
//! being skipped, because a silently misread spec file would corrupt a whole
//! test campaign.

pub mod api;
pub mod datatypes;
pub mod error;
pub mod node;
pub mod parse;
pub mod write;

pub use api::{ApiHeaderDoc, FunctionSpec, ParamSpec};
pub use datatypes::{DataTypeDoc, DataTypeSpec};
pub use error::{ParseError, SpecError};
pub use node::{Element, Node};
pub use parse::parse_document;
pub use write::to_string_pretty;
