//! XML document tree: elements, text and comments.

/// A node in an XML tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data. Entity references are already resolved; surrounding
    /// whitespace is preserved by the parser and trimmed only by accessors
    /// that ask for it.
    Text(String),
    /// A `<!-- ... -->` comment (kept so spec files can round-trip).
    Comment(String),
}

impl Node {
    /// Returns the element if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the text content if this node is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: name, ordered attributes, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name (no namespace handling — the spec files use none).
    pub name: String,
    /// Attributes in document order. Duplicate names are rejected by the
    /// parser, so lookup by name is unambiguous.
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attrs: Vec::new(), children: Vec::new() }
    }

    /// Builder-style attribute addition.
    pub fn with_attr(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.attrs.push((k.into(), v.into()));
        self
    }

    /// Builder-style child addition.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style text child addition.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Iterates over child elements (skipping text and comments).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Returns the first child element with the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Returns every child element with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenated, whitespace-trimmed text content of direct children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let Node::Text(t) = c {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("Function")
            .with_attr("Name", "XM_reset_partition")
            .with_attr("ReturnType", "xm_s32_t")
            .with_child(
                Element::new("ParametersList")
                    .with_child(Element::new("Parameter").with_attr("Name", "partitionId")),
            )
            .with_text("  trailing  ")
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("Name"), Some("XM_reset_partition"));
        assert_eq!(e.attr("ReturnType"), Some("xm_s32_t"));
        assert_eq!(e.attr("Missing"), None);
    }

    #[test]
    fn find_child() {
        let e = sample();
        let pl = e.find("ParametersList").expect("child present");
        assert_eq!(pl.find_all("Parameter").count(), 1);
        assert!(e.find("Nope").is_none());
    }

    #[test]
    fn text_is_trimmed_concat() {
        let e = sample();
        assert_eq!(e.text(), "trailing");
        let multi = Element::new("V").with_text("  a").with_text("b  ");
        assert_eq!(multi.text(), "ab");
    }

    #[test]
    fn node_accessors() {
        let el = Node::Element(Element::new("x"));
        let tx = Node::Text("hello".into());
        let cm = Node::Comment("c".into());
        assert!(el.as_element().is_some());
        assert!(el.as_text().is_none());
        assert_eq!(tx.as_text(), Some("hello"));
        assert!(tx.as_element().is_none());
        assert!(cm.as_element().is_none() && cm.as_text().is_none());
    }

    #[test]
    fn child_elements_skips_text_and_comments() {
        let e = Element::new("root")
            .with_text("t")
            .with_child(Element::new("a"))
            .with_child(Element::new("b"));
        assert_eq!(e.child_elements().count(), 2);
    }
}
