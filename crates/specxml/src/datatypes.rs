//! Typed **Data Type XML** document (paper Fig. 3).
//!
//! Associates every kernel data type with its ANSI C basic type and the
//! "dictionary" of interesting test values used by the data type fault
//! model:
//!
//! ```xml
//! <DataTypes Kernel="XtratuM">
//!   <DataType Name="xm_u32_t">
//!     <BasicType>unsigned int</BasicType>
//!     <TestValues>
//!       <Value>0</Value>
//!       <Value>1</Value>
//!       <Value>2</Value>
//!       <Value>16</Value>
//!       <Value>4294967295</Value>
//!     </TestValues>
//!   </DataType>
//! </DataTypes>
//! ```
//!
//! Values are kept as strings at this layer (they may be decimal, negative,
//! or symbolic); the `skrt` dictionary layer parses them into typed raw
//! words.

use crate::error::SpecError;
use crate::node::Element;
use crate::parse::parse_document;
use crate::write::to_string_pretty;

/// One `<DataType>` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataTypeSpec {
    /// XM type name, e.g. `xm_u32_t`.
    pub name: String,
    /// ANSI C declaration, e.g. `unsigned int`.
    pub basic_type: String,
    /// The test-value dictionary, in document order, as written.
    pub test_values: Vec<String>,
}

/// The whole data-type document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataTypeDoc {
    /// Kernel name attribute.
    pub kernel: String,
    /// All data types in document order.
    pub types: Vec<DataTypeSpec>,
}

impl DataTypeDoc {
    /// Parses a data-type document from XML text.
    pub fn from_xml(src: &str) -> Result<Self, SpecError> {
        let root = parse_document(src)?;
        Self::from_element(&root)
    }

    /// Interprets an already-parsed element tree.
    pub fn from_element(root: &Element) -> Result<Self, SpecError> {
        if root.name != "DataTypes" {
            return Err(SpecError::WrongRoot { expected: "DataTypes", found: root.name.clone() });
        }
        let mut doc = DataTypeDoc {
            kernel: root.attr("Kernel").unwrap_or_default().to_string(),
            types: Vec::new(),
        };
        for dt in root.find_all("DataType") {
            let name = dt
                .attr("Name")
                .ok_or_else(|| SpecError::MissingAttr { element: dt.name.clone(), attr: "Name" })?
                .to_string();
            let basic_type = dt
                .find("BasicType")
                .ok_or_else(|| SpecError::MissingChild {
                    element: format!("DataType Name=\"{name}\""),
                    child: "BasicType",
                })?
                .text();
            let tv = dt.find("TestValues").ok_or_else(|| SpecError::MissingChild {
                element: format!("DataType Name=\"{name}\""),
                child: "TestValues",
            })?;
            let test_values: Vec<String> = tv.find_all("Value").map(|v| v.text()).collect();
            if test_values.is_empty() {
                return Err(SpecError::Structure(format!(
                    "DataType '{name}' has an empty <TestValues> list"
                )));
            }
            doc.types.push(DataTypeSpec { name, basic_type, test_values });
        }
        Ok(doc)
    }

    /// Builds the element tree for this document.
    pub fn to_element(&self) -> Element {
        let mut root = Element::new("DataTypes").with_attr("Kernel", &self.kernel);
        for dt in &self.types {
            let mut tv = Element::new("TestValues");
            for v in &dt.test_values {
                tv = tv.with_child(Element::new("Value").with_text(v.clone()));
            }
            root = root.with_child(
                Element::new("DataType")
                    .with_attr("Name", &dt.name)
                    .with_child(Element::new("BasicType").with_text(dt.basic_type.clone()))
                    .with_child(tv),
            );
        }
        root
    }

    /// Serializes to pretty XML.
    pub fn to_xml(&self) -> String {
        to_string_pretty(&self.to_element())
    }

    /// Looks a data type up by name.
    pub fn data_type(&self, name: &str) -> Option<&DataTypeSpec> {
        self.types.iter().find(|t| t.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_doc() -> DataTypeDoc {
        DataTypeDoc {
            kernel: "XtratuM".into(),
            types: vec![DataTypeSpec {
                name: "xm_u32_t".into(),
                basic_type: "unsigned int".into(),
                test_values: vec![
                    "0".into(),
                    "1".into(),
                    "2".into(),
                    "16".into(),
                    "4294967295".into(),
                ],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let doc = fig3_doc();
        let back = DataTypeDoc::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_fig3_with_wrapper() {
        let src = r#"<DataTypes Kernel="XtratuM">
          <DataType Name="xm_u32_t">
            <BasicType>unsigned int</BasicType>
            <TestValues>
              <Value>0</Value><Value>1</Value><Value>2</Value>
              <Value>16</Value><Value>4294967295</Value>
            </TestValues>
          </DataType>
        </DataTypes>"#;
        let doc = DataTypeDoc::from_xml(src).unwrap();
        let dt = doc.data_type("xm_u32_t").unwrap();
        assert_eq!(dt.basic_type, "unsigned int");
        assert_eq!(dt.test_values.len(), 5);
        assert_eq!(dt.test_values[4], "4294967295");
    }

    #[test]
    fn negative_values_supported() {
        let doc = DataTypeDoc {
            kernel: "XM".into(),
            types: vec![DataTypeSpec {
                name: "xm_s32_t".into(),
                basic_type: "signed int".into(),
                test_values: vec!["-2147483648".into(), "-16".into(), "-1".into()],
            }],
        };
        let back = DataTypeDoc::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(back.types[0].test_values[0], "-2147483648");
    }

    #[test]
    fn missing_basic_type_rejected() {
        let src = r#"<DataTypes Kernel="X">
          <DataType Name="t"><TestValues><Value>0</Value></TestValues></DataType>
        </DataTypes>"#;
        let e = DataTypeDoc::from_xml(src).unwrap_err();
        assert!(matches!(e, SpecError::MissingChild { child: "BasicType", .. }));
    }

    #[test]
    fn missing_test_values_rejected() {
        let src = r#"<DataTypes Kernel="X">
          <DataType Name="t"><BasicType>int</BasicType></DataType>
        </DataTypes>"#;
        let e = DataTypeDoc::from_xml(src).unwrap_err();
        assert!(matches!(e, SpecError::MissingChild { child: "TestValues", .. }));
    }

    #[test]
    fn empty_test_values_rejected() {
        let src = r#"<DataTypes Kernel="X">
          <DataType Name="t"><BasicType>int</BasicType><TestValues/></DataType>
        </DataTypes>"#;
        let e = DataTypeDoc::from_xml(src).unwrap_err();
        assert!(matches!(e, SpecError::Structure(_)));
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(
            DataTypeDoc::from_xml("<ApiHeader/>").unwrap_err(),
            SpecError::WrongRoot { expected: "DataTypes", .. }
        ));
    }
}
