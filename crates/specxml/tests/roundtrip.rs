//! Property tests: arbitrary spec documents survive the
//! serialize → parse round-trip byte-for-byte at the model level.
//! Randomised via the deterministic `testkit` harness.

use specxml::{
    parse_document, to_string_pretty, ApiHeaderDoc, DataTypeDoc, DataTypeSpec, Element,
    FunctionSpec, ParamSpec,
};
use testkit::Rng;

fn ident(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"abcXYZ_";
    const REST: &[u8] = b"abcXYZ_09.-";
    let mut s = String::new();
    s.push(*rng.pick(FIRST) as char);
    for _ in 0..rng.range(0, 12) {
        s.push(*rng.pick(REST) as char);
    }
    s
}

/// Text content including characters that require escaping.
fn text(rng: &mut Rng) -> String {
    const PIECES: [&str; 9] = ["a", "<", ">", "&", "\"", "'", "värde", "0", "-42"];
    let n = rng.range(1, 6);
    (0..n).map(|_| *rng.pick(&PIECES)).collect::<Vec<_>>().join("")
}

fn attrs(rng: &mut Rng, el: Element) -> Element {
    let mut el = el;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.range(0, 3) {
        let (k, v) = (ident(rng), text(rng));
        if seen.insert(k.clone()) {
            el = el.with_attr(k, v);
        }
    }
    el
}

fn arb_element(rng: &mut Rng, depth: u32) -> Element {
    let name = ident(rng);
    let el = attrs(rng, Element::new(name));
    if depth == 0 {
        el.with_text(text(rng))
    } else {
        let mut el = el;
        for _ in 0..rng.range(0, 3) {
            el = el.with_child(arb_element(rng, depth - 1));
        }
        el
    }
}

#[test]
fn element_trees_round_trip() {
    testkit::check("element_trees_round_trip", 256, |rng| {
        let el = arb_element(rng, 3);
        let xml = to_string_pretty(&el);
        let back = parse_document(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        assert_eq!(el, back);
    });
}

#[test]
fn api_headers_round_trip() {
    testkit::check("api_headers_round_trip", 128, |rng| {
        let doc = ApiHeaderDoc {
            kernel: ident(rng),
            version: "x.y".into(),
            functions: rng.vec_of(0, 8, |rng| FunctionSpec {
                name: ident(rng),
                return_type: "xm_s32_t".into(),
                return_is_pointer: false,
                params: rng.vec_of(0, 5, |rng| ParamSpec {
                    name: ident(rng),
                    ty: ident(rng),
                    is_pointer: rng.chance(1, 2),
                }),
            }),
        };
        let back = ApiHeaderDoc::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(doc, back);
    });
}

#[test]
fn datatype_docs_round_trip() {
    testkit::check("datatype_docs_round_trip", 128, |rng| {
        let doc = DataTypeDoc {
            kernel: "XM".into(),
            types: rng.vec_of(1, 6, |rng| DataTypeSpec {
                name: ident(rng),
                basic_type: "signed long long".into(),
                test_values: rng.vec_of(1, 8, |r| (r.next_u64() as i64).to_string()),
            }),
        };
        let back = DataTypeDoc::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(doc, back);
    });
}

/// The parser never panics on arbitrary input (it may error).
#[test]
fn parser_total_on_arbitrary_input() {
    const CHARS: &[u8] = b"<>&\"'=/ abcXM_09\n\t";
    testkit::check("parser_total_on_arbitrary_input", 256, |rng| {
        let input: String = (0..rng.range(0, 200)).map(|_| *rng.pick(CHARS) as char).collect();
        let _ = parse_document(&input);
    });
}

/// ... including arbitrary bytes forced through lossy UTF-8.
#[test]
fn parser_total_on_arbitrary_bytes() {
    testkit::check("parser_total_on_arbitrary_bytes", 256, |rng| {
        let bytes = rng.bytes(0, 200);
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse_document(&s);
    });
}
