//! Property tests: arbitrary spec documents survive the
//! serialize → parse round-trip byte-for-byte at the model level.

use proptest::prelude::*;
use specxml::{
    parse_document, to_string_pretty, ApiHeaderDoc, DataTypeDoc, DataTypeSpec, Element,
    FunctionSpec, ParamSpec,
};

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,12}".prop_map(|s| s)
}

/// Text content including characters that require escaping.
fn text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("&".to_string()),
            Just("\"".to_string()),
            Just("'".to_string()),
            Just("värde".to_string()),
            Just("0".to_string()),
            Just("-42".to_string()),
        ],
        1..6,
    )
    .prop_map(|v| v.join(""))
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (ident(), proptest::collection::vec((ident(), text()), 0..3), text()).prop_map(
        |(name, attrs, txt)| {
            let mut el = Element::new(name);
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    el = el.with_attr(k, v);
                }
            }
            el.with_text(txt)
        },
    );
    if depth == 0 {
        leaf.boxed()
    } else {
        (
            ident(),
            proptest::collection::vec((ident(), text()), 0..3),
            proptest::collection::vec(arb_element(depth - 1), 0..3),
        )
            .prop_map(|(name, attrs, children)| {
                let mut el = Element::new(name);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        el = el.with_attr(k, v);
                    }
                }
                for c in children {
                    el = el.with_child(c);
                }
                el
            })
            .boxed()
    }
}

proptest! {
    #[test]
    fn element_trees_round_trip(el in arb_element(3)) {
        let xml = to_string_pretty(&el);
        let back = parse_document(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert_eq!(el, back);
    }

    #[test]
    fn api_headers_round_trip(
        kernel in ident(),
        funcs in proptest::collection::vec(
            (ident(), proptest::collection::vec((ident(), ident(), any::<bool>()), 0..5)),
            0..8
        )
    ) {
        let doc = ApiHeaderDoc {
            kernel,
            version: "x.y".into(),
            functions: funcs
                .into_iter()
                .map(|(name, params)| FunctionSpec {
                    name,
                    return_type: "xm_s32_t".into(),
                    return_is_pointer: false,
                    params: params
                        .into_iter()
                        .map(|(n, t, p)| ParamSpec { name: n, ty: t, is_pointer: p })
                        .collect(),
                })
                .collect(),
        };
        let back = ApiHeaderDoc::from_xml(&doc.to_xml()).unwrap();
        prop_assert_eq!(doc, back);
    }

    #[test]
    fn datatype_docs_round_trip(
        types in proptest::collection::vec(
            (ident(), proptest::collection::vec(any::<i64>(), 1..8)),
            1..6
        )
    ) {
        let doc = DataTypeDoc {
            kernel: "XM".into(),
            types: types
                .into_iter()
                .map(|(name, vals)| DataTypeSpec {
                    name,
                    basic_type: "signed long long".into(),
                    test_values: vals.iter().map(|v| v.to_string()).collect(),
                })
                .collect(),
        };
        let back = DataTypeDoc::from_xml(&doc.to_xml()).unwrap();
        prop_assert_eq!(doc, back);
    }

    /// The parser never panics on arbitrary input (it may error).
    #[test]
    fn parser_total_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_document(&input);
    }

    /// ... including arbitrary bytes forced through lossy UTF-8.
    #[test]
    fn parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = parse_document(&s);
    }
}
