//! Legacy vs. patched ablation (experiment A1): the same 2662-test
//! campaign on both kernel builds. The legacy build raises the paper's
//! nine issues; the build with the documented fixes raises none — the
//! fault-removal outcome the paper reports ("this service has now been
//! revised by the XM development team ...").
//!
//! Run with: `cargo run --release --example patched_comparison`

use skrt::classify::CrashClass;
use xm_campaign::run_paper_campaign;
use xtratum::vuln::KernelBuild;

fn main() {
    for build in [KernelBuild::Legacy, KernelBuild::Patched] {
        let report = run_paper_campaign(build, 0);
        println!("=== {} ===", build.label());
        let mut per_class = std::collections::BTreeMap::new();
        for r in &report.result.records {
            *per_class.entry(r.classification.class).or_insert(0u32) += 1;
        }
        for class in [
            CrashClass::Pass,
            CrashClass::Catastrophic,
            CrashClass::Restart,
            CrashClass::Abort,
            CrashClass::Silent,
            CrashClass::Hindering,
        ] {
            println!("  {:<14} {:>5}", class.label(), per_class.get(&class).copied().unwrap_or(0));
        }
        println!("  raised issues: {}", report.issues.len());
        for issue in &report.issues {
            println!("    - {}", issue.description);
        }
        println!();
    }
    println!("Fix verification: every legacy finding is closed on the patched build.");
}
