//! A multi-threaded partition in the RTEMS role (paper Section IV.A),
//! running inside EagleEye: the payload partition hosts three prioritised
//! tasks — an acquisition task feeding a frame queue, a compression task
//! draining it under a semaphore-guarded budget, and a background
//! housekeeping task — all scheduled cooperatively within the partition's
//! TSP slots.
//!
//! Run with: `cargo run --example rtems_partition`

use eagleeye::map::PAYLOAD;
use eagleeye::EagleEye;
use rtems_lite::{Poll, RtemsGuest};
use skrt::testbed::Testbed;
use std::sync::{Arc, Mutex};
use xtratum::vuln::KernelBuild;

fn main() {
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Patched);

    let compressed = Arc::new(Mutex::new(Vec::<u32>::new()));
    let hk_runs = Arc::new(Mutex::new(0u32));
    let (c_out, hk_out) = (compressed.clone(), hk_runs.clone());

    let guest = RtemsGuest::new(1_000, move |rt| {
        let frames = rt.create_queue(8);
        let budget = rt.create_semaphore(3); // compression budget tokens

        // Acquisition: highest priority, one frame per dispatch.
        let mut seq = 0u32;
        rt.spawn("ACQ", 1, move |svc| {
            seq += 1;
            if !svc.queue_try_send(frames, seq.to_be_bytes().to_vec()) {
                return Poll::Sleep(2); // queue full: back off
            }
            Poll::Sleep(1)
        });

        // Compression: consumes frames when a budget token is available.
        let out = c_out.clone();
        let mut have_token = false;
        rt.spawn("COMP", 2, move |svc| {
            if !have_token {
                if !svc.sem_try_obtain(budget) {
                    return Poll::WaitSem(budget);
                }
                have_token = true;
            }
            match svc.queue_try_receive(frames) {
                Some(msg) => {
                    let mut b = [0u8; 4];
                    b.copy_from_slice(&msg);
                    out.lock().unwrap().push(u32::from_be_bytes(b));
                    have_token = false;
                    svc.sem_release(budget); // steady-state budget
                    Poll::Yield
                }
                None => Poll::WaitQueue(frames),
            }
        });

        // Housekeeping: lowest priority, runs in the gaps.
        let hk = hk_out.clone();
        rt.spawn("HK", 9, move |svc| {
            *hk.lock().unwrap() += 1;
            let _ = svc.ticks();
            Poll::Sleep(10)
        });
    });
    guests.set(PAYLOAD, Box::new(guest));

    let frames = 8;
    let summary = kernel.run_major_frames(&mut guests, frames);

    println!("EagleEye with an RTOS-style multi-task payload partition — {frames} frames\n");
    println!("healthy:            {}", summary.healthy());
    println!("frames compressed:  {}", compressed.lock().unwrap().len());
    println!("hk activations:     {}", hk_runs.lock().unwrap());
    let data = compressed.lock().unwrap();
    println!("frame sequence intact: {}", data.windows(2).all(|w| w[1] == w[0] + 1));
    println!(
        "\nThree cooperative tasks (priorities 1/2/9) shared the payload\n\
         partition's TSP slots under a queue + semaphore discipline, while\n\
         the other four partitions ran their own applications — the\n\
         multi-threaded partition profile the paper attributes to RTEMS."
    );
}
