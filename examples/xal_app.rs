//! A complete partition application on the **XtratuM Abstraction Layer**
//! (the single-threaded runtime the paper names in Section IV.A), running
//! inside the EagleEye testbed: a thermal-monitor app in the housekeeping
//! partition that samples a sensor, publishes reports, and reacts to its
//! periodic partition timer.
//!
//! Run with: `cargo run --example xal_app`

use eagleeye::map::{part_base, HK, PART_SIZE};
use eagleeye::EagleEye;
use skrt::testbed::Testbed;
use xal::{PortHandle, XalApp, XalCtx, XalGuest};
use xtratum::vuln::KernelBuild;

#[derive(Default)]
struct ThermalMonitor {
    report_port: Option<PortHandle>,
    samples: u32,
    timer_ticks: u32,
    max_temp: u32,
}

impl XalApp for ThermalMonitor {
    fn init(&mut self, ctx: &mut XalCtx<'_, '_>) {
        ctx.print("THM: thermal monitor booting\n").ok();
        // HK owns the HkReport sampling channel as its source.
        self.report_port = ctx.create_sampling_port("HkReport", 32, 0).ok();
        // 20 ms housekeeping tick on the wall clock.
        ctx.set_timer(0, 1, 20_000).expect("timer");
    }

    fn on_timer(&mut self, ctx: &mut XalCtx<'_, '_>) {
        self.timer_ticks += 1;
        ctx.trace_event(0x1, self.timer_ticks).ok();
    }

    fn step(&mut self, ctx: &mut XalCtx<'_, '_>) {
        // Sample the (synthetic) thermistor.
        ctx.consume(1_500);
        self.samples += 1;
        let temp = 20 + (self.samples * 7) % 15;
        self.max_temp = self.max_temp.max(temp);

        // Publish a 32-byte housekeeping report.
        let mut report = [0u8; 32];
        report[..4].copy_from_slice(&self.samples.to_be_bytes());
        report[4..8].copy_from_slice(&temp.to_be_bytes());
        report[8..12].copy_from_slice(&self.timer_ticks.to_be_bytes());
        if let Some(p) = self.report_port {
            ctx.write_sampling(p, &report).ok();
        }
        if self.samples.is_multiple_of(4) {
            ctx.print("THM: nominal\n").ok();
        }
    }

    fn on_shutdown(&mut self, ctx: &mut XalCtx<'_, '_>) -> bool {
        ctx.print("THM: shutdown acknowledged\n").ok();
        true
    }
}

fn main() {
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Patched);
    // Replace the generic HK guest with the XAL application; the XAL data
    // window sits in the upper half of HK's RAM.
    guests
        .set(HK, Box::new(XalGuest::new(ThermalMonitor::default(), part_base(HK) + PART_SIZE / 2)));

    let frames = 12;
    let summary = kernel.run_major_frames(&mut guests, frames);

    println!("EagleEye with a XAL application in the HK partition — {frames} frames\n");
    println!("healthy: {}", summary.healthy());
    println!("HK status: {}", summary.partition_final[HK as usize].name());
    println!("\nconsole:\n{}", summary.console);
    println!(
        "The HK partition published {} reports through its sampling port; TMTC\n\
         consumed them every frame. The same application code would compile\n\
         against the real XAL C API — the runtime shape (init / step / timer\n\
         handler / shutdown handler) is XAL's.",
        frames
    );
}
