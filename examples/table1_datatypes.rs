//! Prints Table I (the XtratuM data types) and Table II (the xm_s32_t
//! test-value set) exactly as reported in the paper.
//!
//! Run with: `cargo run --example table1_datatypes`

use xm_campaign::paper_dictionary;
use xtratum::types::XM_TYPES;

fn main() {
    println!("TABLE I — XTRATUM DATA TYPES\n");
    println!("{:<14} {:<16} {:>6}  ANSI C Type", "XM Basic", "XM Extended", "Size");
    println!("{}", "-".repeat(60));
    for t in XM_TYPES.iter().filter(|t| t.extends.is_none()) {
        let extended: Vec<&str> =
            XM_TYPES.iter().filter(|e| e.extends == Some(t.name)).map(|e| e.name).collect();
        let ext = if extended.is_empty() { "-".to_string() } else { extended.join(", ") };
        println!("{:<14} {:<16} {:>4}b   {}", t.name, ext, t.bits, t.ansi_c);
    }

    let dict = paper_dictionary();
    println!("\n\nTABLE II — DATA TYPE TEST-VALUE-SET EXAMPLE (xm_s32_t)\n");
    println!("{:<16} {:>14}  Description", "XM Data type", "Test Data");
    println!("{}", "-".repeat(48));
    for v in dict.values("xm_s32_t") {
        println!("{:<16} {:>14}  {}", "xm_s32_t", v.as_s32(), v.label.unwrap_or("*"));
    }
    println!("\n(* = valid / invalid input depending on hypercall — the anti-masking values)");

    println!("\n\nData type XML value sets (Fig. 3 format):");
    for ty in dict.types() {
        let vals: Vec<String> = dict.values(ty).iter().map(|v| v.to_string()).collect();
        println!("  {:<14} {{{}}}", ty, vals.join(", "));
    }
}
