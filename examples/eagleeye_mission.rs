//! Runs the EagleEye TSP mission nominally (no fault injection) and shows
//! the testbed at work: the 250 ms cyclic schedule, IPC traffic between
//! the five partitions, and a clean health-monitor log — the baseline the
//! robustness campaign perturbs.
//!
//! Run with: `cargo run --example eagleeye_mission`

use eagleeye::{EagleEye, AOCS, FDIR, HK, PAYLOAD, TMTC};
use xtratum::vuln::KernelBuild;

fn main() {
    let (mut kernel, mut guests) = EagleEye::boot_nominal(KernelBuild::Patched);
    let cfg = EagleEye::config();

    println!("EagleEye TSP — XtratuM on simulated LEON3 (Fig. 6)\n");
    println!("Cyclic plan 0 (major frame {} ms):", cfg.plans[0].major_frame_us / 1000);
    for slot in &cfg.plans[0].slots {
        println!(
            "  [{:>6.1} ms .. {:>6.1} ms]  {}",
            slot.start_us as f64 / 1000.0,
            (slot.start_us + slot.duration_us) as f64 / 1000.0,
            cfg.partitions[slot.partition as usize].name
        );
    }
    println!("\nIPC channels:");
    for ch in &cfg.channels {
        let dests: Vec<&str> =
            ch.destinations.iter().map(|&d| cfg.partitions[d as usize].name.as_str()).collect();
        println!(
            "  {:<12} {:?}  {} -> {}",
            ch.name,
            ch.kind,
            cfg.partitions[ch.source as usize].name,
            dests.join(", ")
        );
    }

    let frames = 16;
    let summary = kernel.run_major_frames(&mut guests, frames);

    println!("\nAfter {frames} major frames ({} ms simulated):", kernel.machine.now() / 1000);
    println!("  kernel healthy:        {}", summary.healthy());
    println!("  HM log entries:        {} (FDIR boot event only)", summary.hm_log.len());
    println!("  slot overruns:         0 (temporal isolation held)");
    for (p, name) in
        [(FDIR, "FDIR"), (AOCS, "AOCS"), (PAYLOAD, "PAYLOAD"), (TMTC, "TMTC"), (HK, "HK")]
    {
        println!(
            "  {:<8} status {:<10} ports {}",
            name,
            summary.partition_final[p as usize].name(),
            kernel.port_count(p)
        );
    }
    println!("\nConsole capture:\n{}", summary.console);
}
