//! Quickstart: test one hypercall with the data type fault model.
//!
//! Builds the dictionary-driven suite for `XM_reset_system`, shows the
//! generated mutant C source for one dataset (the Fig. 5 artefact), runs
//! the suite on the EagleEye testbed against the legacy kernel, and
//! prints the classification of every test.
//!
//! Run with: `cargo run --example quickstart`

use eagleeye::EagleEye;
use skrt::classify::CrashClass;
use skrt::exec::{run_campaign, CampaignOptions};
use skrt::mutant::MutantSpec;
use skrt::report::render_issues;
use skrt::suite::{CampaignSpec, TestSuite};
use xm_campaign::paper_dictionary;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn main() {
    // 1. Preparation: one suite from the default dictionaries.
    let dict = paper_dictionary();
    let suite = TestSuite::from_dictionary(HypercallId::ResetSystem, &dict)
        .expect("dictionary covers the API");
    println!(
        "Suite: {} — {} parameter(s), {} test dataset(s) (Eq. 1)\n",
        suite.hypercall.name(),
        suite.matrix.len(),
        suite.total()
    );

    let mut spec = CampaignSpec::new("quickstart");
    spec.push(suite);

    // 2. Mutant generation: the C fault placeholder for dataset #2
    //    (XM_reset_system(2) — one of the paper's findings).
    let case = spec.all_cases().into_iter().nth(2).unwrap();
    println!("--- generated mutant source (Fig. 5) ---");
    println!("{}", MutantSpec::new(case).emit_c_source());

    // 3. Execution on the EagleEye testbed, legacy kernel.
    let result = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions { build: KernelBuild::Legacy, ..Default::default() },
    );

    // 4. Log analysis.
    println!("--- per-test classification ---");
    for rec in &result.records {
        println!(
            "  {:<36} expected {:?}, observed {:?} => {}",
            rec.case.display_call(),
            rec.expectation.outcome,
            rec.observation.first(),
            rec.classification.class.label()
        );
    }
    let issues = result.issues();
    println!();
    print!("{}", render_issues(&issues));

    let catastrophic = result
        .records
        .iter()
        .filter(|r| r.classification.class == CrashClass::Catastrophic)
        .count();
    println!("\n{catastrophic} catastrophic test(s) out of {}.", result.records.len());
}
