//! Generates the toolset's two XML specification files (paper Figs. 2–3)
//! into `specs/`, then parses them back and verifies they agree with the
//! in-code API table and dictionary.
//!
//! Run with: `cargo run --example spec_xml`

use skrt::apispec::{api_header_doc, data_type_doc, dictionary_from_doc, verify_api_header};
use specxml::{ApiHeaderDoc, DataTypeDoc};
use xm_campaign::paper_dictionary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("specs")?;

    // --- API Header XML (Fig. 2) ---
    let api = api_header_doc();
    let api_xml = api.to_xml();
    std::fs::write("specs/xm_api.xml", &api_xml)?;
    println!(
        "wrote specs/xm_api.xml ({} hypercalls, {} bytes)",
        api.functions.len(),
        api_xml.len()
    );

    // --- Data Type XML (Fig. 3) ---
    let dict = paper_dictionary();
    let dt = data_type_doc(&dict);
    let dt_xml = dt.to_xml();
    std::fs::write("specs/xm_datatypes.xml", &dt_xml)?;
    println!(
        "wrote specs/xm_datatypes.xml ({} data types, {} bytes)",
        dt.types.len(),
        dt_xml.len()
    );

    // --- Campaign XML (the operator-selected Table III suites) ---
    let camp = xm_campaign::paper_campaign();
    let camp_xml = xm_campaign::campaign_to_xml(&camp);
    std::fs::write("specs/xm_campaign.xml", &camp_xml)?;
    println!(
        "wrote specs/xm_campaign.xml ({} suites, {} tests, {} bytes)",
        camp.suites.len(),
        camp.total_tests(),
        camp_xml.len()
    );
    let ranges = [(eagleeye::FDIR_BASE, eagleeye::PART_SIZE)];
    let camp_back =
        xm_campaign::campaign_from_xml(&camp_xml, &ranges).map_err(std::io::Error::other)?;
    assert_eq!(camp_back.total_tests(), 2662);

    // --- round-trip verification ---
    let api_back = ApiHeaderDoc::from_xml(&std::fs::read_to_string("specs/xm_api.xml")?)?;
    let problems = verify_api_header(&api_back);
    assert!(problems.is_empty(), "API header diverged: {problems:?}");

    let dt_back = DataTypeDoc::from_xml(&std::fs::read_to_string("specs/xm_datatypes.xml")?)?;
    let ranges = [(eagleeye::FDIR_BASE, eagleeye::PART_SIZE)];
    let dict_back = dictionary_from_doc(&dt_back, &ranges)?;
    for ty in ["xm_s32_t", "xm_u32_t", "xmTime_t"] {
        let a: Vec<u64> = dict.values(ty).iter().map(|v| v.raw).collect();
        let b: Vec<u64> = dict_back.values(ty).iter().map(|v| v.raw).collect();
        assert_eq!(a, b, "{ty} diverged after round-trip");
    }
    println!("\nround-trip verified: the XML files are faithful to the in-code tables.");

    // Show the Fig. 2 / Fig. 3 excerpts.
    println!("\n--- Fig. 2 excerpt (XM_reset_partition) ---");
    for line in api_xml.lines().filter(|l| {
        l.contains("reset_partition") || l.contains("partitionId") || l.contains("resetMode")
    }) {
        println!("{line}");
    }
    println!("\n--- Fig. 3 excerpt (xm_u32_t) ---");
    let mut in_u32 = false;
    for line in dt_xml.lines() {
        if line.contains("\"xm_u32_t\"") {
            in_u32 = true;
        }
        if in_u32 {
            println!("{line}");
            if line.contains("</DataType>") {
                break;
            }
        }
    }
    Ok(())
}
