//! The Section V oracle "dry run" (experiment A2).
//!
//! "A dry run by manually cross-checking return codes against reference
//! documentation would be instrumental as future work in establishing a
//! truth base" — this example performs that cross-check automatically
//! with the reference oracle, splitting the findings into those the
//! health monitor flags on its own (Catastrophic/Restart/Abort) and
//! those only the return-code comparison can catch (Silent/Hindering).
//!
//! Run with: `cargo run --release --example oracle_audit`

use skrt::classify::{classify_terminal_only, CrashClass};
use xm_campaign::run_paper_campaign;
use xtratum::vuln::KernelBuild;

fn main() {
    let report = run_paper_campaign(KernelBuild::Legacy, 0);

    let mut hm_only_failures = 0usize;
    let mut oracle_only_failures = Vec::new();

    for rec in &report.result.records {
        let with_oracle = rec.classification.class;
        let hm_only = classify_terminal_only(&rec.observation, &rec.expectation, 0).class;
        if hm_only != CrashClass::Pass {
            hm_only_failures += 1;
        } else if with_oracle != CrashClass::Pass {
            oracle_only_failures.push(rec);
        }
    }

    println!("Oracle dry-run over {} tests (legacy build)\n", report.result.records.len());
    println!("Failures visible to the health monitor alone: {hm_only_failures}");
    println!("Failures only the return-code cross-check finds: {}\n", oracle_only_failures.len());
    for rec in &oracle_only_failures {
        println!(
            "  {} — expected {:?}, observed {:?} => {}",
            rec.case.display_call(),
            rec.expectation.outcome,
            rec.observation.first(),
            rec.classification.class.label()
        );
    }
    println!(
        "\nThe {} silent test(s) collapse into the paper's single negative-interval\n\
         finding: \"XM fails to correctly check the interval parameter and does\n\
         not detect an invalid negative interval.\"",
        oracle_only_failures.len()
    );
}
