//! Fault-masking demonstration (paper Fig. 7 and Section IV.B).
//!
//! Shows why the dictionaries mix valid and invalid values: an invalid
//! first parameter masks every later parameter's check. Runs the Fig. 7
//! two-case experiment on `XM_reset_partition` and then the quantitative
//! masking analysis over the whole Fig. 2 suite.
//!
//! Run with: `cargo run --example masking_demo`

use eagleeye::EagleEye;
use skrt::dictionary::TestValue;
use skrt::masking::{analyze, fig7_demo};
use skrt::suite::TestSuite;
use skrt::testbed::Testbed;
use xm_campaign::paper_dictionary;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn main() {
    let ctx = EagleEye.oracle_context(KernelBuild::Legacy);
    let dict = paper_dictionary();
    let suite = TestSuite::from_dictionary(HypercallId::ResetPartition, &dict).unwrap();

    // A dataset the manual accepts: reset partition 1 (AOCS), cold, status 0.
    let valid = vec![TestValue::scalar(1), TestValue::scalar(0), TestValue::scalar(0)];
    // A dataset with the first two parameters invalid.
    let invalid =
        vec![TestValue::scalar(-1i32 as u32 as u64), TestValue::scalar(16), TestValue::scalar(0)];

    println!("--- Fig. 7: fault masking on {} ---\n", suite.hypercall.name());
    println!("{}\n", fig7_demo(&ctx, &suite, &valid, &invalid).unwrap());

    println!(
        "--- quantitative masking analysis over the full suite ({} datasets) ---\n",
        suite.total()
    );
    let report = analyze(&ctx, &suite, &valid).unwrap();
    println!("{:<14} {:>18} {:>10} {:>10}", "parameter", "invalid datasets", "blamed", "masked");
    let names = ["partitionId", "resetMode", "status"];
    for (i, p) in report.params.iter().enumerate() {
        println!(
            "{:<14} {:>18} {:>10} {:>10}",
            names[i], p.invalid_occurrences, p.blamed, p.masked
        );
    }
    println!("\nfully valid datasets: {}", report.fully_valid_datasets);
    println!(
        "\nEvery 'masked' count would be zero only if each parameter were tested\n\
         with all earlier parameters valid — which is why Table II includes\n\
         values that are valid for some hypercalls (marked * in the paper)."
    );
}
