//! Section V extensions (experiment A3): phantom parameters for
//! parameter-less hypercalls and state-based stress conditions.
//!
//! Run with: `cargo run --release --example stress_phantom`

use eagleeye::EagleEye;
use skrt::classify::CrashClass;
use skrt::phantom::run_phantom_campaign;
use skrt::stress::{run_stress_sweep, StressScenario};
use skrt::suite::CampaignSpec;
use xm_campaign::paper_campaign;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn main() {
    // --- phantom parameters: the 10 parameter-less hypercalls -----------
    println!("=== phantom parameters: parameter-less hypercalls x 5 system states ===\n");
    let records = run_phantom_campaign(&EagleEye, KernelBuild::Legacy);
    let mut current = None;
    for r in &records {
        if current != Some(r.hypercall) {
            current = Some(r.hypercall);
            print!("\n{:<26}", r.hypercall.name());
        }
        print!(" {}:{}", r.phantom, short(r.classification.class));
    }
    let failures = records.iter().filter(|r| r.classification.class != CrashClass::Pass).count();
    println!(
        "\n\n{} phantom tests, {} failures — the parameter-less surface is robust.\n",
        records.len(),
        failures
    );

    // --- state-based stress: re-run the set_timer suite under stress ----
    println!("=== state-based stress: XM_set_timer suite under 5 scenarios ===\n");
    let full: CampaignSpec = paper_campaign();
    let cases: Vec<_> =
        full.all_cases().into_iter().filter(|c| c.hypercall == HypercallId::SetTimer).collect();
    let records = run_stress_sweep(&EagleEye, KernelBuild::Legacy, &cases);
    println!(
        "{:<18} {:>6} {:>13} {:>8} {:>7}",
        "scenario", "tests", "catastrophic", "restart", "abort"
    );
    for scenario in StressScenario::ALL {
        let of = |class| {
            records
                .iter()
                .filter(|r| r.scenario == scenario && r.classification.class == class)
                .count()
        };
        println!(
            "{:<18} {:>6} {:>13} {:>8} {:>7}",
            scenario.label(),
            records.iter().filter(|r| r.scenario == scenario).count(),
            of(CrashClass::Catastrophic),
            of(CrashClass::Restart),
            of(CrashClass::Abort),
        );
    }
    println!(
        "\nThe two catastrophic datasets — XM_set_timer(0,1,1) and (1,1,1) —\n\
         reproduce under every stress state; stress does not mask them."
    );
}

fn short(c: CrashClass) -> &'static str {
    match c {
        CrashClass::Pass => "ok",
        CrashClass::Catastrophic => "CAT",
        CrashClass::Restart => "RST",
        CrashClass::Abort => "ABT",
        CrashClass::Silent => "SIL",
        CrashClass::Hindering => "HIN",
    }
}
