//! The full Section IV case study: 2662 tests against the legacy
//! XtratuM build on the EagleEye testbed. Regenerates **Table III**, the
//! **Fig. 8** distribution, and the Section IV issue bulletins.
//!
//! Run with: `cargo run --release --example full_campaign`

use std::time::Instant;
use xm_campaign::run_paper_campaign;
use xtratum::vuln::KernelBuild;

fn main() {
    println!("EagleEye TSP testbed (Fig. 6):");
    println!("  LEON3 (simulated) + XtratuM; 5 partitions over a 250 ms major frame");
    println!("  FDIR (system partition) hosts the fault placeholders\n");

    let t0 = Instant::now();
    let report = run_paper_campaign(KernelBuild::Legacy, 0);
    let elapsed = t0.elapsed();

    print!("{}", report.render());
    println!(
        "\nExecuted {} tests in {:.2?} ({:.0} tests/s)",
        report.result.records.len(),
        elapsed,
        report.result.records.len() as f64 / elapsed.as_secs_f64()
    );
    println!(
        "Failing tests: {} (deduplicated into {} issues)",
        report.result.failing_tests(),
        report.issues.len()
    );
}
