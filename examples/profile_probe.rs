//! Ad-hoc phase profiler for the campaign hot path (not part of the
//! shipped toolset; run with `cargo run --release --example profile_probe`).

use eagleeye::EagleEye;
use skrt::testbed::Testbed;
use std::hint::black_box;
use std::time::Instant;
use xtratum::vuln::KernelBuild;

fn main() {
    let spec = xm_campaign::paper_campaign();
    let cases = spec.all_cases();
    let ctx = EagleEye.oracle_context(KernelBuild::Legacy);
    let snapshot = EagleEye.snapshot(KernelBuild::Legacy).unwrap();

    let n = 2000usize;

    // Phase 1: workspace materialisation (one per worker, off the hot
    // path) and bare restore cost.
    let t = Instant::now();
    let mut ws = snapshot.workspace();
    println!("workspace materialise: {:.2} us", t.elapsed().as_nanos() as f64 / 1e3);
    let t = Instant::now();
    for _ in 0..n {
        ws.restore(&snapshot, Some(EagleEye.test_partition()));
    }
    println!("restore (clean): {:.2} us", t.elapsed().as_nanos() as f64 / n as f64 / 1e3);

    // Phase 2: seed-style fresh boot per test, for scale.
    let t = Instant::now();
    for case in cases.iter().take(200) {
        let rec = skrt::exec::run_single_test(&EagleEye, &ctx, KernelBuild::Legacy, case);
        black_box(rec);
    }
    println!("fresh-boot test: {:.2} us", t.elapsed().as_nanos() as f64 / 200.0 / 1e3);

    // Phase 3: workspace-based execution, phase split, plus the
    // event-horizon split: how many kernel time advances collapsed to
    // the quiescent fast path vs walked the full expiry-processing
    // path, and how advance-call counts distribute across tests.
    let mut t_restore = 0u128;
    let mut t_step = 0u128;
    let mut t_sum = 0u128;
    let mut t_cls = 0u128;
    let mut adv_quiescent = 0u64;
    let mut adv_processed = 0u64;
    // advance calls per test, bucketed in powers of two: [1,2), [2,4), ...
    let mut adv_histogram = [0u64; 16];
    ws.restore(&snapshot, Some(EagleEye.test_partition()));
    let snapshot_stats = ws.parts().0.advance_stats();
    for case in cases.iter().take(n) {
        let expectation = ctx.expect(&case.raw());
        let t0 = Instant::now();
        ws.restore(&snapshot, Some(EagleEye.test_partition()));
        let t1 = Instant::now();
        let (kernel, guests) = ws.parts();
        let mutant = skrt::mutant::MutantGuest::new(case.raw(), EagleEye.prologue());
        guests.set(EagleEye.test_partition(), Box::new(mutant));
        kernel.step_major_frames(guests, EagleEye.frames_per_test());
        let t2 = Instant::now();
        // The workspace restore copies the snapshot's counters back, so
        // the post-step values *are* this test's advance counts.
        let (base_q, base_p) = snapshot_stats;
        let (q, p) = kernel.advance_stats();
        let (dq, dp) = (q - base_q, p - base_p);
        adv_quiescent += dq;
        adv_processed += dp;
        let bucket = (64 - (dq + dp).max(1).leading_zeros() as usize).min(adv_histogram.len()) - 1;
        adv_histogram[bucket] += 1;
        let invocations = skrt::mutant::take_invocations(guests, EagleEye.test_partition());
        let observation = skrt::observe::TestObservation { invocations, summary: kernel.summary() };
        let t3 = Instant::now();
        let classification =
            skrt::classify::classify(&observation, &expectation, EagleEye.test_partition());
        let t4 = Instant::now();
        t_restore += (t1 - t0).as_nanos();
        t_step += (t2 - t1).as_nanos();
        t_sum += (t3 - t2).as_nanos();
        t_cls += (t4 - t3).as_nanos();
        black_box((observation, classification));
    }
    println!("  restore:     {:.2} us", t_restore as f64 / n as f64 / 1e3);
    println!("  step frames: {:.2} us", t_step as f64 / n as f64 / 1e3);
    println!("  summary:     {:.2} us", t_sum as f64 / n as f64 / 1e3);
    println!("  classify:    {:.2} us", t_cls as f64 / n as f64 / 1e3);
    let total = adv_quiescent + adv_processed;
    println!(
        "  advances:    {total} over {n} tests ({adv_quiescent} quiescent / {adv_processed} processed, {:.1}% horizon hits)",
        adv_quiescent as f64 / total.max(1) as f64 * 100.0
    );
    println!("  advance-calls-per-test histogram (log2 buckets):");
    for (i, &count) in adv_histogram.iter().enumerate() {
        if count > 0 {
            println!("    [{:>5}, {:>5}): {count}", 1u64 << i, 1u64 << (i + 1));
        }
    }
}
