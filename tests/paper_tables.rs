//! Pins every number of the paper's evaluation artefacts (Table III and
//! Fig. 8) end-to-end, across all workspace crates.

use skrt::classify::{Cause, CrashClass};
use skrt::oracle::ParamClass;
use skrt::report::{campaign_table, distribution};
use xm_campaign::{paper_campaign, run_paper_campaign};
use xtratum::hypercall::{Category, HypercallId};
use xtratum::observe::ResetKind;
use xtratum::vuln::KernelBuild;

/// Table III of the paper, row by row:
/// (category, total hypercalls, tested, tests, raised issues).
const TABLE_III: [(Category, usize, usize, u64, usize); 11] = [
    (Category::SystemManagement, 3, 2, 8, 3),
    (Category::PartitionManagement, 10, 6, 236, 0),
    (Category::TimeManagement, 2, 2, 34, 3),
    (Category::PlanManagement, 2, 1, 2, 0),
    (Category::InterPartitionCommunication, 10, 8, 598, 0),
    (Category::MemoryManagement, 2, 1, 991, 0),
    (Category::HealthMonitorManagement, 5, 3, 64, 0),
    (Category::TraceManagement, 5, 4, 428, 0),
    (Category::InterruptManagement, 5, 4, 172, 0),
    (Category::Miscellaneous, 5, 3, 41, 3),
    (Category::SparcSpecific, 12, 5, 88, 0),
];

#[test]
fn table_iii_reproduces_exactly() {
    let report = run_paper_campaign(KernelBuild::Legacy, 0);
    let table = campaign_table(&report.spec, &report.result);
    assert_eq!(table.rows.len(), TABLE_III.len());
    for ((row, (cat, total, tested, tests, issues)), _) in table.rows.iter().zip(TABLE_III).zip(0..)
    {
        assert_eq!(row.category, cat);
        assert_eq!(row.total_hypercalls, total, "{cat}: total hypercalls");
        assert_eq!(row.hypercalls_tested, tested, "{cat}: hypercalls tested");
        assert_eq!(row.tests, tests, "{cat}: number of tests");
        assert_eq!(row.raised_issues, issues, "{cat}: raised issues");
    }
    let (total, tested, tests, issues) = table.totals();
    assert_eq!((total, tested, tests, issues), (61, 39, 2662, 9));
}

/// The nine Section IV issues, pinned by identity — hypercall, CRASH
/// class, root cause and responsible-parameter signature — not just by
/// count. Any oracle or kernel-model drift that swaps one defect for
/// another while keeping the totals at 9 fails here.
#[test]
fn legacy_raises_exactly_the_nine_table_iii_issues() {
    use CrashClass::*;
    use HypercallId::*;
    type IssueIdentity = (HypercallId, CrashClass, Cause, Option<(usize, ParamClass)>);
    let expected: [IssueIdentity; 9] = [
        // XM_reset_system: the legacy mode & 1 decode turns three
        // documented-invalid modes into real system resets.
        (
            ResetSystem,
            Catastrophic,
            Cause::UnexpectedSystemReset(ResetKind::Cold),
            Some((0, ParamClass::Value(2))),
        ),
        (
            ResetSystem,
            Catastrophic,
            Cause::UnexpectedSystemReset(ResetKind::Cold),
            Some((0, ParamClass::Value(16))),
        ),
        (
            ResetSystem,
            Catastrophic,
            Cause::UnexpectedSystemReset(ResetKind::Warm),
            Some((0, ParamClass::Value(u32::MAX as u64))),
        ),
        // XM_set_timer: negative interval silently accepted; 1 µs HW
        // interval recurses in the vtimer handler; 1 µs EXEC interval
        // floods the simulator with IRQs.
        (SetTimer, Silent, Cause::WrongSuccess, Some((2, ParamClass::Value(i64::MIN as u64)))),
        (SetTimer, Catastrophic, Cause::KernelHalt, None),
        (SetTimer, Catastrophic, Cause::SimulatorCrash, None),
        // XM_multicall: unvalidated batch pointers at both positions and
        // the 2048-entry temporal-isolation break.
        (Multicall, Abort, Cause::UnhandledServiceException, Some((0, ParamClass::InvalidPointer))),
        (Multicall, Restart, Cause::TemporalOverrun, None),
        (Multicall, Abort, Cause::UnhandledServiceException, Some((1, ParamClass::InvalidPointer))),
    ];
    let report = run_paper_campaign(KernelBuild::Legacy, 0);
    let got: Vec<_> = report
        .issues
        .iter()
        .map(|i| (i.key.hypercall, i.key.class, i.key.cause, i.key.param))
        .collect();
    assert_eq!(got, expected, "issue identities drifted:\n{:#?}", report.issues);
}

#[test]
fn fig8_distribution_reproduces() {
    let d = distribution(&paper_campaign());
    // "covered over 64 per cent of total XM hypercalls" (39/61 = 63.9 %)
    assert_eq!((d.tested, d.total()), (39, 61));
    assert!(d.tested * 1000 / d.total() >= 639);
    // "just below 50 per cent of untested calls are hypercalls with no
    // parameters" (10/22 = 45.5 %)
    assert_eq!(d.untested_parameterless, 10);
    assert_eq!(d.untested_with_params, 12);
    let share =
        d.untested_parameterless * 100 / (d.untested_parameterless + d.untested_with_params);
    assert!((40..50).contains(&share), "{share}");
    // "hypercalls with no parameters ... amount to 16 per cent of all XM
    // hypercalls"
    assert_eq!(d.untested_parameterless * 100 / d.total(), 16);
}

#[test]
fn rendered_report_contains_the_paper_numbers() {
    let report = run_paper_campaign(KernelBuild::Legacy, 0);
    let text = report.render();
    for needle in ["2662", "61", "39", "Inter-Partition Communication", "991", "9 raised issue"] {
        assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
    }
}
