//! Runtime independence: the Section IV findings are kernel defects, not
//! artefacts of the injection harness — injecting the same datasets from
//! a multi-threaded (RTEMS-style) partition and from a XAL application
//! produces the same kernel-level outcomes as the single-threaded mutant.

use eagleeye::map::*;
use eagleeye::EagleEye;
use leon3_sim::machine::SimHealth;
use rtems_lite::{Poll, RtemsGuest};
use skrt::testbed::Testbed;
use std::sync::{Arc, Mutex};
use xal::{XalApp, XalCtx, XalGuest};
use xtratum::hypercall::{HypercallId, RawHypercall};
use xtratum::vuln::KernelBuild;

#[test]
fn rtems_task_triggers_the_set_timer_kernel_halt() {
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
    let guest = RtemsGuest::new(1_000, |rt| {
        // A background task and the injecting task share the partition.
        rt.spawn("background", 5, |_| Poll::Sleep(3));
        rt.spawn("injector", 1, |svc| {
            let _ = svc
                .api
                .hypercall(&RawHypercall::new_unchecked(HypercallId::SetTimer, vec![0, 1, 1]));
            Poll::Done
        });
    });
    guests.set(FDIR, Box::new(guest));
    let s = kernel.run_major_frames(&mut guests, 2);
    assert!(s.kernel_halt_reason.is_some(), "XM must halt whoever hosts the call");
}

#[test]
fn rtems_task_triggers_the_simulator_crash() {
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
    let guest = RtemsGuest::new(1_000, |rt| {
        rt.spawn("injector", 1, |svc| {
            let _ = svc
                .api
                .hypercall(&RawHypercall::new_unchecked(HypercallId::SetTimer, vec![1, 1, 1]));
            Poll::Done
        });
    });
    guests.set(FDIR, Box::new(guest));
    let s = kernel.run_major_frames(&mut guests, 2);
    assert!(matches!(s.sim_health, SimHealth::Crashed { .. }));
}

#[test]
fn xal_app_observes_the_silent_negative_interval() {
    #[derive(Default)]
    struct Injector {
        observed: Arc<Mutex<Option<Result<(), xal::XalError>>>>,
    }
    impl XalApp for Injector {
        fn init(&mut self, _ctx: &mut XalCtx<'_, '_>) {}
        fn step(&mut self, ctx: &mut XalCtx<'_, '_>) {
            if self.observed.lock().unwrap().is_none() {
                let r = ctx.set_timer(0, 1, i64::MIN);
                *self.observed.lock().unwrap() = Some(r);
            }
        }
    }
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
    let observed = Arc::new(Mutex::new(None));
    let app = Injector { observed: observed.clone() };
    guests.set(FDIR, Box::new(XalGuest::new(app, FDIR_BASE + 0xA000)));
    let s = kernel.run_major_frames(&mut guests, 2);
    assert!(s.healthy());
    // The XAL wrapper reports success — the silent acceptance, as seen by
    // application code rather than by the test harness.
    assert_eq!(*observed.lock().unwrap(), Some(Ok(())));

    // ... while the patched kernel surfaces the documented error.
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Patched);
    let observed = Arc::new(Mutex::new(None));
    guests.set(
        FDIR,
        Box::new(XalGuest::new(Injector { observed: observed.clone() }, FDIR_BASE + 0xA000)),
    );
    kernel.run_major_frames(&mut guests, 2);
    assert_eq!(
        *observed.lock().unwrap(),
        Some(Err(xal::XalError::Kernel(xtratum::retcode::XmRet::InvalidParam)))
    );
}

#[test]
fn rtems_partition_survives_its_sibling_tasks_when_one_injects_robust_inputs() {
    // A task hammers robust-but-invalid inputs while siblings keep
    // working: fault containment *within* the partition OS.
    let progress = Arc::new(Mutex::new(0u32));
    let p = progress.clone();
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
    let guest = RtemsGuest::new(1_000, move |rt| {
        rt.spawn("worker", 2, move |_| {
            *p.lock().unwrap() += 1;
            Poll::Sleep(1)
        });
        rt.spawn("injector", 3, |svc| {
            for args in [vec![9u64, 0, 0], vec![0, (-1i64) as u64, 0]] {
                let r =
                    svc.api.hypercall(&RawHypercall::new_unchecked(HypercallId::SetTimer, args));
                assert_eq!(r, Ok(xtratum::retcode::XmRet::InvalidParam.code()));
            }
            Poll::Yield
        });
    });
    guests.set(FDIR, Box::new(guest));
    let s = kernel.run_major_frames(&mut guests, 4);
    assert!(s.healthy());
    assert!(*progress.lock().unwrap() >= 4, "worker kept running");
}
