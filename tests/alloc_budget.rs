//! Allocation-budget regression test for the campaign hot path.
//!
//! The zero-allocation work on the kernel hot path (sink-based timer
//! advancement, lazily rendered halt reasons, scratch-buffer IPC, inline
//! hypercall arguments, guest-owned invocation logs) is only protected if
//! a regression shows up in CI. This test counts global allocations for
//! one steady-state test executed from a boot snapshot — the exact
//! per-test path of the campaign engine — and pins them under a budget.
//!
//! The measured path also covers the event-horizon bookkeeping (scalar
//! compares and counter bumps, nothing heap-borne) and the staged
//! sampling-port writes: the nominal AOCS/FDIR guests publish samples
//! every frame, so each counted test stages and commits port traffic
//! through the per-channel `SampleStage` buffers. Those buffers reach
//! their high-water capacity during warm-up and are reused (`clear`
//! keeps capacity) afterwards, so the budget below is unchanged from
//! before staging existed — that *is* the pin.
//!
//! The budget is deliberately ~50% above the measured steady state so it
//! catches reintroduced per-slot/per-expiry allocation (dozens to
//! hundreds per test) without flaking on allocator-library noise.

use skrt::mutant::{take_invocations, MutantGuest};
use skrt::observe::TestObservation;
use skrt::testbed::Testbed;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use xtratum::vuln::KernelBuild;

/// The counting allocator is process-global, so tests that open a
/// counting window must not overlap.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Steady-state per-test allocation ceiling on the snapshot path.
/// Measured at this pin: ~70 per test (was ~279 before the hot path went
/// allocation-free). A reintroduced per-slot, per-expiry or per-hypercall
/// allocation moves the count by dozens to hundreds and trips this
/// immediately.
const BUDGET: u64 = 110;

/// The flat-snapshot rewind — `Workspace::restore`, the operation the
/// campaign engine runs between every two tests on the same worker —
/// must be exactly allocation-free once the workspace is warm. It is a
/// bounded memcpy of dirty pages plus field-by-field scalar restores;
/// any allocation here is per-test overhead multiplied by the whole
/// campaign, so the pin is zero, not a budget.
#[test]
fn workspace_restore_is_allocation_free_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    let testbed = eagleeye::EagleEye;
    let spec = xm_campaign::paper_campaign();
    let cases = spec.all_cases();
    let snapshot = testbed.snapshot(KernelBuild::Legacy).expect("EagleEye snapshots");
    let part = testbed.test_partition();
    let mut ws = snapshot.workspace();

    let run_one = |ws: &mut skrt::testbed::Workspace, case: &skrt::suite::TestCase| {
        let (kernel, guests) = ws.parts();
        guests.set(part, Box::new(MutantGuest::new(case.raw(), testbed.prologue())));
        kernel.step_major_frames(guests, testbed.frames_per_test());
        assert!(!take_invocations(guests, part).is_empty());
    };

    // Warm-up: the same cases the measured loop will run, so every
    // lazily grown scratch buffer (message scratch, recycled port
    // queues, dirty-page list) reaches the high-water capacity those
    // cases need, and each measured restore has genuinely dirty pages
    // to rewind.
    for case in cases.iter().take(50) {
        ws.restore(&snapshot, Some(part));
        run_one(&mut ws, case);
    }

    let mut restores = 0u64;
    ALLOCS.store(0, Ordering::SeqCst);
    for case in cases.iter().take(50) {
        COUNTING.store(true, Ordering::SeqCst);
        ws.restore(&snapshot, Some(part));
        COUNTING.store(false, Ordering::SeqCst);
        restores += 1;
        run_one(&mut ws, case); // dirty the arena again, outside the window
    }
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        count, 0,
        "Workspace::restore allocated {count} times across {restores} warm rewinds; \
         the flat-snapshot restore path must be a pure copy-back"
    );
}

/// The telemetry hot path — the per-test bookkeeping each worker does in
/// its `LocalMetrics` (plain counter bumps plus log2-histogram
/// `observe` calls for phase timers and hypercall latency) — must be
/// exactly allocation-free. Histogram buckets are fixed-size inline
/// arrays and counters are plain `u64`s, so the pin is zero: any
/// allocation here would be per-test overhead inside the existing
/// 110-alloc budget and would erode it silently.
#[test]
fn telemetry_hot_path_is_allocation_free() {
    use flightrec::{HistogramSet, LatencyHistogram};
    let _serial = SERIAL.lock().unwrap();

    // Built outside the window, like a worker's LocalMetrics: the set is
    // sized once per worker, then only observed into per test.
    let mut phase = [LatencyHistogram::default(), LatencyHistogram::default()];
    let mut latency = HistogramSet::new(64);
    let mut tests_executed = 0u64;
    let mut class_counts = [0u64; 6];

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for i in 0..10_000u64 {
        tests_executed += 1;
        class_counts[(i % 6) as usize] += 1;
        phase[(i % 2) as usize].observe(i % 20_000); // spans every log2 bucket
        latency.observe((i % 64) as u32, i % 1_000);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);

    std::hint::black_box((&phase, &latency, tests_executed, class_counts));
    assert_eq!(
        count, 0,
        "telemetry bookkeeping allocated {count} times across 10k observations; \
         counter bumps and histogram observes must stay heap-free"
    );
}

#[test]
fn snapshot_path_steady_state_allocations_stay_in_budget() {
    let _serial = SERIAL.lock().unwrap();
    let testbed = eagleeye::EagleEye;
    let spec = xm_campaign::paper_campaign();
    // A representative non-resetting case: XM_set_timer with an ordinary
    // dataset. Reset/halt datasets re-run boot prologues and have a
    // legitimately different (larger) profile.
    let case = spec
        .all_cases()
        .into_iter()
        .find(|c| {
            c.hypercall == xtratum::hypercall::HypercallId::SetTimer
                && c.dataset.iter().all(|v| v.raw == 1)
        })
        .expect("campaign contains an all-ones XM_set_timer dataset");

    let snapshot = testbed.snapshot(KernelBuild::Legacy).expect("EagleEye snapshots");
    let run_once = || {
        let (mut kernel, mut guests) = snapshot.instantiate();
        guests.set(
            testbed.test_partition(),
            Box::new(MutantGuest::new(case.raw(), testbed.prologue())),
        );
        kernel.step_major_frames(&mut guests, testbed.frames_per_test());
        let invocations = take_invocations(&mut guests, testbed.test_partition());
        TestObservation { invocations, summary: kernel.into_summary() }
    };

    // Warm-up: fills lazily grown scratch capacities (kernel message
    // scratch, recycled IPC buffers) so the counted runs see the steady
    // state a campaign worker reaches after its first few tests.
    for _ in 0..3 {
        assert!(!run_once().invocations.is_empty());
    }

    const RUNS: u64 = 5;
    let measure = || {
        ALLOCS.store(0, Ordering::SeqCst);
        COUNTING.store(true, Ordering::SeqCst);
        for _ in 0..RUNS {
            std::hint::black_box(run_once());
        }
        COUNTING.store(false, Ordering::SeqCst);
        ALLOCS.load(Ordering::SeqCst) / RUNS
    };

    // Phase 1: flight recorder compiled in but disabled — the default
    // campaign configuration. The budget is unchanged from before the
    // recorder existed, which pins "disabled costs zero allocations"
    // (its hot-path contribution is one thread-local boolean branch).
    assert!(!flightrec::active(), "recorder must start disabled");
    let per_test = measure();
    assert!(
        per_test <= BUDGET,
        "snapshot-path test now allocates {per_test} times per test (budget {BUDGET}); \
         something reintroduced allocation on the hot path \
         (recorder disabled — recording must not cost anything here)"
    );

    // Phase 2: recorder enabled. Events land in the preallocated ring
    // (records are Copy), so the per-test count must stay within the very
    // same budget: only enable() and drain() may allocate, never the
    // record path itself. Both stay outside the counting window.
    flightrec::enable(skrt::flight::DEFAULT_RING_CAPACITY);
    assert!(!run_once().invocations.is_empty()); // warm the enabled path
    let per_test_enabled = measure();
    let drained = flightrec::drain();
    flightrec::disable();
    assert!(!drained.events.is_empty(), "enabled runs must have recorded events");
    assert!(
        per_test_enabled <= BUDGET,
        "recorder-enabled test allocates {per_test_enabled} times per test (budget {BUDGET}); \
         the record path must write into the preallocated ring without allocating"
    );
}
