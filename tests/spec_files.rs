//! The committed spec files (`specs/xm_api.xml`, `specs/xm_datatypes.xml`
//! — the Fig. 2 / Fig. 3 artefacts) must stay consistent with the in-code
//! API table and dictionaries. Regenerate with
//! `cargo run --example spec_xml` after changing either.

use skrt::apispec::{api_header_doc, data_type_doc, dictionary_from_doc, verify_api_header};
use specxml::{ApiHeaderDoc, DataTypeDoc};
use xm_campaign::paper_dictionary;

fn repo_file(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/");
    std::fs::read_to_string(format!("{path}{name}")).unwrap_or_else(|e| {
        panic!("missing specs/{name} (run `cargo run --example spec_xml`): {e}")
    })
}

#[test]
fn committed_api_header_matches_in_code_table() {
    let doc = ApiHeaderDoc::from_xml(&repo_file("xm_api.xml")).expect("well-formed");
    assert_eq!(doc.functions.len(), 61);
    let problems = verify_api_header(&doc);
    assert!(problems.is_empty(), "{problems:#?}");
    // Byte-identical with a fresh render.
    assert_eq!(repo_file("xm_api.xml"), api_header_doc().to_xml());
}

#[test]
fn committed_datatype_file_matches_dictionary() {
    let doc = DataTypeDoc::from_xml(&repo_file("xm_datatypes.xml")).expect("well-formed");
    let dict = paper_dictionary();
    assert_eq!(repo_file("xm_datatypes.xml"), data_type_doc(&dict).to_xml());
    // ... and it decodes back to the same raw values.
    let ranges = [(eagleeye::FDIR_BASE, eagleeye::PART_SIZE)];
    let back = dictionary_from_doc(&doc, &ranges).expect("decodable");
    for ty in ["xm_s32_t", "xm_u32_t", "xmTime_t", "xmSize_t"] {
        let a: Vec<u64> = dict.values(ty).iter().map(|v| v.raw).collect();
        let b: Vec<u64> = back.values(ty).iter().map(|v| v.raw).collect();
        assert_eq!(a, b, "{ty}");
    }
}

#[test]
fn committed_campaign_file_reproduces_table_iii_spec() {
    let xml = repo_file("xm_campaign.xml");
    // Byte-identical with a fresh render of the in-code campaign.
    assert_eq!(xml, xm_campaign::campaign_to_xml(&xm_campaign::paper_campaign()));
    // ... and it loads back into the exact 2662-test campaign.
    let ranges = [(eagleeye::FDIR_BASE, eagleeye::PART_SIZE)];
    let spec = xm_campaign::campaign_from_xml(&xml, &ranges).expect("loadable");
    assert_eq!(spec.total_tests(), 2662);
    assert_eq!(spec.tested_hypercalls().len(), 39);
}

#[test]
fn file_driven_table_iii_campaign_finds_the_nine_issues() {
    // The full paper experiment, driven purely from the committed file.
    let ranges = [(eagleeye::FDIR_BASE, eagleeye::PART_SIZE)];
    let spec = xm_campaign::campaign_from_xml(&repo_file("xm_campaign.xml"), &ranges).unwrap();
    let result = skrt::exec::run_campaign(
        &eagleeye::EagleEye,
        &spec,
        &skrt::exec::CampaignOptions {
            build: xtratum::vuln::KernelBuild::Legacy,
            ..Default::default()
        },
    );
    assert_eq!(result.issues().len(), 9);
}

#[test]
fn fig2_and_fig3_content_present_in_files() {
    let api = repo_file("xm_api.xml");
    assert!(api
        .contains(r#"<Function Name="XM_reset_partition" ReturnType="xm_s32_t" IsPointer="NO">"#));
    assert!(api.contains(r#"<Parameter Name="resetMode" Type="xm_u32_t" IsPointer="NO"/>"#));
    let dt = repo_file("xm_datatypes.xml");
    assert!(dt.contains(r#"<DataType Name="xm_u32_t">"#));
    for v in ["<Value>0</Value>", "<Value>16</Value>", "<Value>4294967295</Value>"] {
        assert!(dt.contains(v), "{v}");
    }
}
