//! End-to-end checks for the flight-recorder trace pipeline: a recorded
//! campaign must export a Chrome/Perfetto trace that passes the repo's
//! own validator (`scripts/check_trace_json.py`), and the campaign CLI
//! must exit non-zero when a requested trace cannot be written.

use eagleeye::EagleEye;
use skrt::exec::{run_campaign, CampaignOptions};
use skrt::flight::export_chrome_trace;
use skrt::suite::CampaignSpec;
use std::process::Command;
use xm_campaign::{eagleeye_flight_names, paper_campaign};
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn small_spec() -> CampaignSpec {
    // Two defective hypercalls (slot overruns, kernel halts, resets) and
    // one robust one — enough outcome variety to exercise every exporter
    // track kind without running the whole 2662-test campaign in debug.
    let full = paper_campaign();
    let mut spec = CampaignSpec::new("flight trace subset");
    for s in full.suites {
        if matches!(
            s.hypercall,
            HypercallId::SetTimer | HypercallId::ResetSystem | HypercallId::HmSeek
        ) {
            spec.push(s);
        }
    }
    spec
}

#[test]
fn recorded_campaign_exports_a_trace_the_validator_accepts() {
    let spec = small_spec();
    let result = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions {
            build: KernelBuild::Legacy,
            threads: 2,
            record: true,
            ..Default::default()
        },
    );
    let flight = result.flight.as_ref().expect("recorded run keeps a flight log");
    assert_eq!(flight.tests.len() as u64, spec.total_tests());
    let json = export_chrome_trace(flight, &result.records, &eagleeye_flight_names());

    let path = std::env::temp_dir().join("skrt_flight_trace_test.json");
    std::fs::write(&path, &json).expect("write trace");
    let out = Command::new("python3")
        .arg(concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/check_trace_json.py"))
        .arg(&path)
        .output()
        .expect("python3 is available (CI and dev images ship it)");
    let _ = std::fs::remove_file(&path);
    assert!(
        out.status.success(),
        "validator rejected the exported trace:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("check_trace_json: OK"), "unexpected validator output: {stdout}");
}

/// A failed `--trace` write must surface as a non-zero exit and a
/// message on stderr — CI jobs depend on that to fail loudly instead of
/// silently dropping the artifact.
#[test]
fn campaign_cli_exits_nonzero_when_trace_cannot_be_written() {
    let out = Command::new(env!("CARGO_BIN_EXE_skrt-repro"))
        .args([
            "campaign",
            "--build",
            "patched",
            "--threads",
            "4",
            "--trace",
            "/nonexistent-skrt-dir/trace.jsonl",
        ])
        .output()
        .expect("run skrt-repro");
    assert!(!out.status.success(), "CLI must fail when the trace path is unwritable");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("failed to write trace"),
        "stderr must explain the trace failure, got: {stderr}"
    );
}
