//! Differential property test: the reference oracle and the patched
//! kernel must agree on **every** dataset, not just the campaign's.
//!
//! For arbitrary (hypercall, raw-argument) combinations drawn from a pool
//! of boundary values, valid addresses and random words, executing the
//! test on the *patched* build must classify as `Pass` — i.e. the kernel
//! implementation conforms to the documented behaviour the oracle
//! encodes. (On the legacy build the same property holds for every
//! hypercall except the three defective ones.)

use eagleeye::map::*;
use eagleeye::EagleEye;
use skrt::classify::CrashClass;
use skrt::dictionary::TestValue;
use skrt::exec::run_single_test;
use skrt::suite::TestCase;
use skrt::testbed::Testbed;
use testkit::Rng;
use xtratum::hypercall::{HypercallId, ALL_HYPERCALLS};
use xtratum::vuln::KernelBuild;

/// Interesting raw words: boundary scalars, every flavour of pointer, and
/// a few arbitrary values.
fn value_pool() -> Vec<u64> {
    vec![
        0,
        1,
        2,
        3,
        4,
        15,
        16,
        32,
        255,
        256,
        4096,
        u32::MAX as u64,
        i32::MAX as u64,
        i32::MIN as i64 as u64,
        -1i64 as u64,
        -16i64 as u64,
        49,
        50,
        51,
        1_000_000,
        i64::MAX as u64,
        i64::MIN as u64,
        SCRATCH as u64,
        SCRATCH_HI as u64,
        (SCRATCH + 4) as u64,
        BATCH_START as u64,
        BATCH_END as u64,
        KERNEL_PTR as u64,
        PTR_NAME_GYRO as u64,
        PTR_NAME_TM as u64,
        (PTR_NAME_GYRO + 4) as u64,
        part_base(AOCS) as u64,
        (FDIR_BASE + PART_SIZE - 4) as u64,
        UNMAPPED_TOP as u64,
        0xDEAD_BEEF,
        0x8000_0000,
    ]
}

fn arb_case(rng: &mut Rng, pool: &[u64]) -> TestCase {
    let def = rng.pick(ALL_HYPERCALLS);
    let dataset: Vec<TestValue> =
        (0..def.params.len()).map(|_| TestValue::scalar(*rng.pick(pool))).collect();
    TestCase { hypercall: def.id, dataset, suite_index: 0, case_index: 0 }
}

/// Every one of the 61 hypercalls has an oracle rule: the oracle is a
/// total function over (hypercall × dataset × build), its predictions
/// are internally consistent (a violated-parameter attribution only ever
/// accompanies an error return), and the sequence campaign's stepwise
/// state model agrees with the first-invocation oracle *exactly* at boot
/// state — the stateful overrides refine, never contradict, the base
/// rules.
#[test]
fn every_hypercall_has_an_oracle_rule() {
    let pool = value_pool();
    for build in [KernelBuild::Legacy, KernelBuild::Patched] {
        let ctx = EagleEye.oracle_context(build);
        let model = skrt::sequence::StateModel::new(&ctx);
        let mut covered = 0usize;
        for def in ALL_HYPERCALLS {
            // A deterministic sweep of datasets per hypercall: enough to
            // hit valid, invalid-scalar and invalid-pointer branches.
            for k in 0..16usize {
                let words: Vec<u64> =
                    (0..def.params.len()).map(|p| pool[(k * 7 + p * 3) % pool.len()]).collect();
                let raw = xtratum::hypercall::RawHypercall::new_unchecked(def.id, &words);
                let exp = ctx.expect(&raw);
                if let Some(i) = exp.violated_param {
                    assert!(i < def.params.len().max(1), "{raw}: bogus violated param {i}");
                    assert!(
                        matches!(exp.outcome, skrt::oracle::ExpectedOutcome::Ret(code) if code != xtratum::retcode::XmRet::Ok),
                        "{raw} ({build:?}): violated-param attribution on non-error {:?}",
                        exp.outcome
                    );
                }
                assert_eq!(
                    exp,
                    model.expect_step(&raw),
                    "{raw} ({build:?}): stepwise model disagrees with the oracle at boot"
                );
            }
            covered += 1;
        }
        assert_eq!(covered, 61, "Table III: 61 hypercalls in total");
    }
}

#[test]
fn patched_kernel_conforms_to_the_oracle() {
    let pool = value_pool();
    let tb = EagleEye;
    let ctx = tb.oracle_context(KernelBuild::Patched);
    testkit::check("patched_kernel_conforms_to_the_oracle", 512, |rng| {
        let case = arb_case(rng, &pool);
        let rec = run_single_test(&tb, &ctx, KernelBuild::Patched, &case);
        assert_eq!(
            rec.classification.class,
            CrashClass::Pass,
            "{} -> {:?}; expected {:?}, observed {:?}",
            rec.case.display_call(),
            rec.classification,
            rec.expectation,
            rec.observation.first()
        );
    });
}

#[test]
fn legacy_kernel_conforms_outside_the_three_defective_services() {
    let pool = value_pool();
    let tb = EagleEye;
    let ctx = tb.oracle_context(KernelBuild::Legacy);
    testkit::check("legacy_kernel_conforms_outside_defective", 512, |rng| {
        let case = arb_case(rng, &pool);
        if matches!(
            case.hypercall,
            HypercallId::ResetSystem | HypercallId::SetTimer | HypercallId::Multicall
        ) {
            return;
        }
        let rec = run_single_test(&tb, &ctx, KernelBuild::Legacy, &case);
        assert_eq!(
            rec.classification.class,
            CrashClass::Pass,
            "{} -> {:?}; expected {:?}, observed {:?}",
            rec.case.display_call(),
            rec.classification,
            rec.expectation,
            rec.observation.first()
        );
    });
}
