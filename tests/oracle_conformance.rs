//! Differential property test: the reference oracle and the patched
//! kernel must agree on **every** dataset, not just the campaign's.
//!
//! For arbitrary (hypercall, raw-argument) combinations drawn from a pool
//! of boundary values, valid addresses and random words, executing the
//! test on the *patched* build must classify as `Pass` — i.e. the kernel
//! implementation conforms to the documented behaviour the oracle
//! encodes. (On the legacy build the same property holds for every
//! hypercall except the three defective ones.)

use eagleeye::map::*;
use eagleeye::EagleEye;
use skrt::classify::CrashClass;
use skrt::dictionary::TestValue;
use skrt::exec::run_single_test;
use skrt::suite::TestCase;
use skrt::testbed::Testbed;
use testkit::Rng;
use xtratum::hypercall::{HypercallId, ALL_HYPERCALLS};
use xtratum::vuln::KernelBuild;

/// Interesting raw words: boundary scalars, every flavour of pointer, and
/// a few arbitrary values.
fn value_pool() -> Vec<u64> {
    vec![
        0,
        1,
        2,
        3,
        4,
        15,
        16,
        32,
        255,
        256,
        4096,
        u32::MAX as u64,
        i32::MAX as u64,
        i32::MIN as i64 as u64,
        -1i64 as u64,
        -16i64 as u64,
        49,
        50,
        51,
        1_000_000,
        i64::MAX as u64,
        i64::MIN as u64,
        SCRATCH as u64,
        SCRATCH_HI as u64,
        (SCRATCH + 4) as u64,
        BATCH_START as u64,
        BATCH_END as u64,
        KERNEL_PTR as u64,
        PTR_NAME_GYRO as u64,
        PTR_NAME_TM as u64,
        (PTR_NAME_GYRO + 4) as u64,
        part_base(AOCS) as u64,
        (FDIR_BASE + PART_SIZE - 4) as u64,
        UNMAPPED_TOP as u64,
        0xDEAD_BEEF,
        0x8000_0000,
    ]
}

fn arb_case(rng: &mut Rng, pool: &[u64]) -> TestCase {
    let def = rng.pick(ALL_HYPERCALLS);
    let dataset: Vec<TestValue> =
        (0..def.params.len()).map(|_| TestValue::scalar(*rng.pick(pool))).collect();
    TestCase { hypercall: def.id, dataset, suite_index: 0, case_index: 0 }
}

#[test]
fn patched_kernel_conforms_to_the_oracle() {
    let pool = value_pool();
    let tb = EagleEye;
    let ctx = tb.oracle_context(KernelBuild::Patched);
    testkit::check("patched_kernel_conforms_to_the_oracle", 512, |rng| {
        let case = arb_case(rng, &pool);
        let rec = run_single_test(&tb, &ctx, KernelBuild::Patched, &case);
        assert_eq!(
            rec.classification.class,
            CrashClass::Pass,
            "{} -> {:?}; expected {:?}, observed {:?}",
            rec.case.display_call(),
            rec.classification,
            rec.expectation,
            rec.observation.first()
        );
    });
}

#[test]
fn legacy_kernel_conforms_outside_the_three_defective_services() {
    let pool = value_pool();
    let tb = EagleEye;
    let ctx = tb.oracle_context(KernelBuild::Legacy);
    testkit::check("legacy_kernel_conforms_outside_defective", 512, |rng| {
        let case = arb_case(rng, &pool);
        if matches!(
            case.hypercall,
            HypercallId::ResetSystem | HypercallId::SetTimer | HypercallId::Multicall
        ) {
            return;
        }
        let rec = run_single_test(&tb, &ctx, KernelBuild::Legacy, &case);
        assert_eq!(
            rec.classification.class,
            CrashClass::Pass,
            "{} -> {:?}; expected {:?}, observed {:?}",
            rec.case.display_call(),
            rec.classification,
            rec.expectation,
            rec.observation.first()
        );
    });
}
