//! The campaign must be deterministic and parallelism-independent:
//! shell-script or thread-pool execution, the logs are the same. This is
//! what makes the log-analysis phase trustworthy.

use eagleeye::EagleEye;
use skrt::exec::{run_campaign, CampaignOptions};
use skrt::suite::CampaignSpec;
use xm_campaign::paper_campaign;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn subset() -> CampaignSpec {
    // The three defective hypercalls plus two robust ones — a mix of all
    // outcome kinds.
    let full = paper_campaign();
    let mut spec = CampaignSpec::new("determinism subset");
    for s in full.suites {
        if matches!(
            s.hypercall,
            HypercallId::ResetSystem
                | HypercallId::SetTimer
                | HypercallId::Multicall
                | HypercallId::ReadSamplingMessage
                | HypercallId::HmSeek
        ) {
            spec.push(s);
        }
    }
    spec
}

fn fingerprint(result: &skrt::exec::CampaignResult) -> Vec<(String, String)> {
    result
        .records
        .iter()
        .map(|r| {
            (
                r.case.display_call(),
                format!("{:?}/{:?}/{:?}", r.classification, r.observation.first(), r.param_signature),
            )
        })
        .collect()
}

#[test]
fn repeated_runs_are_identical() {
    let spec = subset();
    let opts = CampaignOptions { build: KernelBuild::Legacy, threads: 2 };
    let a = run_campaign(&EagleEye, &spec, &opts);
    let b = run_campaign(&EagleEye, &spec, &opts);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn thread_count_does_not_change_results() {
    let spec = subset();
    let base = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions { build: KernelBuild::Legacy, threads: 1 },
    );
    for threads in [2, 4, 8] {
        let other = run_campaign(
            &EagleEye,
            &spec,
            &CampaignOptions { build: KernelBuild::Legacy, threads },
        );
        assert_eq!(
            fingerprint(&base),
            fingerprint(&other),
            "divergence at {threads} threads"
        );
    }
}

#[test]
fn records_preserve_campaign_order() {
    let spec = subset();
    let result = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions { build: KernelBuild::Legacy, threads: 4 },
    );
    let expected: Vec<String> =
        spec.all_cases().iter().map(|c| c.display_call()).collect();
    let got: Vec<String> = result.records.iter().map(|r| r.case.display_call()).collect();
    assert_eq!(expected, got);
}
