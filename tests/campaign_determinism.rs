//! The campaign must be deterministic and parallelism-independent:
//! shell-script or thread-pool execution, the logs are the same. This is
//! what makes the log-analysis phase trustworthy — and what lets the
//! snapshot-reusing sharded executor optimise freely.

use eagleeye::EagleEye;
use skrt::exec::{run_campaign, CampaignOptions, CampaignResult};
use skrt::report::{campaign_table, distribution, render_distribution, render_table};
use skrt::suite::CampaignSpec;
use xm_campaign::paper_campaign;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn subset() -> CampaignSpec {
    // The three defective hypercalls plus robust ones — a mix of all
    // outcome kinds. XM_memory_copy is the campaign's only source of
    // repeated raw invocations, so its suites exercise the result memo.
    let full = paper_campaign();
    let mut spec = CampaignSpec::new("determinism subset");
    for s in full.suites {
        if matches!(
            s.hypercall,
            HypercallId::ResetSystem
                | HypercallId::SetTimer
                | HypercallId::Multicall
                | HypercallId::ReadSamplingMessage
                | HypercallId::HmSeek
                | HypercallId::MemoryCopy
        ) {
            spec.push(s);
        }
    }
    spec
}

fn fingerprint(result: &CampaignResult) -> Vec<(String, String)> {
    result
        .records
        .iter()
        .map(|r| {
            (
                r.case.display_call(),
                format!(
                    "{:?}/{:?}/{:?}",
                    r.classification,
                    r.observation.first(),
                    r.param_signature
                ),
            )
        })
        .collect()
}

/// The rendered Table III + Fig. 8 for a result — the full deterministic
/// report surface.
fn rendered(spec: &CampaignSpec, result: &CampaignResult) -> String {
    let mut out = render_table(&campaign_table(spec, result));
    out.push_str(&render_distribution(&distribution(spec)));
    out
}

fn opts(threads: usize) -> CampaignOptions {
    CampaignOptions { build: KernelBuild::Legacy, threads, ..Default::default() }
}

#[test]
fn repeated_runs_are_identical() {
    let spec = subset();
    let a = run_campaign(&EagleEye, &spec, &opts(2));
    let b = run_campaign(&EagleEye, &spec, &opts(2));
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

/// Thread counts 1, 4 and 16 yield identical records and byte-identical
/// rendered Table III / Fig. 8 output.
#[test]
fn thread_count_does_not_change_results_or_rendering() {
    let spec = subset();
    let base = run_campaign(&EagleEye, &spec, &opts(1));
    let base_render = rendered(&spec, &base);
    for threads in [4, 16] {
        let other = run_campaign(&EagleEye, &spec, &opts(threads));
        assert_eq!(fingerprint(&base), fingerprint(&other), "divergence at {threads} threads");
        assert_eq!(base_render, rendered(&spec, &other), "render divergence at {threads} threads");
    }
}

/// The snapshot engine and the seed-style fresh-boot path observe the
/// same behaviour: boot state cloning is transparent to every test.
#[test]
fn snapshot_reuse_is_observationally_transparent() {
    let spec = subset();
    let snap = run_campaign(&EagleEye, &spec, &opts(4));
    let fresh = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions {
            build: KernelBuild::Legacy,
            threads: 4,
            reuse_snapshot: false,
            ..Default::default()
        },
    );
    assert_eq!(fingerprint(&snap), fingerprint(&fresh));
    // and the metrics prove each path was actually exercised: every test
    // is served by a snapshot clone or a memo hit, never a fresh boot
    assert_eq!(snap.metrics.snapshot_clones + snap.metrics.memo_hits, spec.total_tests());
    assert_eq!(fresh.metrics.snapshot_clones, 0);
    assert_eq!(fresh.metrics.fresh_boots + fresh.metrics.memo_hits, spec.total_tests());
}

/// Result memoization on vs off: identical records and byte-identical
/// renderings at 1, 4 and 16 threads. Memoization only ever substitutes
/// a record the worker already produced for the identical raw invocation,
/// so it must be invisible to the whole deterministic surface.
#[test]
fn memoization_is_observationally_transparent() {
    let spec = subset();
    for threads in [1usize, 4, 16] {
        let on = run_campaign(&EagleEye, &spec, &opts(threads));
        let off =
            run_campaign(&EagleEye, &spec, &CampaignOptions { memoize: false, ..opts(threads) });
        assert_eq!(fingerprint(&on), fingerprint(&off), "memo divergence at {threads} threads");
        assert_eq!(
            rendered(&spec, &on),
            rendered(&spec, &off),
            "memo render divergence at {threads} threads"
        );
        assert_eq!(off.metrics.memo_hits, 0);
        assert_eq!(off.metrics.memo_misses, 0);
        assert_eq!(on.metrics.memo_hits + on.metrics.memo_misses, spec.total_tests());
        assert_eq!(on.metrics.snapshot_clones + on.metrics.memo_hits, spec.total_tests());
    }
}

/// On one worker the memo sees the whole campaign, so every repeated raw
/// invocation beyond its first sighting is exactly one memo hit.
#[test]
fn single_worker_memo_hits_every_duplicate() {
    let spec = subset();
    let mut counts = std::collections::HashMap::new();
    for c in spec.all_cases() {
        *counts.entry(c.raw()).or_insert(0u64) += 1;
    }
    let duplicates: u64 = counts.values().map(|c| c - 1).sum();
    assert!(duplicates > 0, "subset must contain repeated raw invocations");
    let result = run_campaign(&EagleEye, &spec, &opts(1));
    assert_eq!(result.metrics.memo_hits, duplicates);
}

#[test]
fn records_preserve_campaign_order() {
    let spec = subset();
    let result = run_campaign(&EagleEye, &spec, &opts(4));
    let expected: Vec<String> = spec.all_cases().iter().map(|c| c.display_call()).collect();
    let got: Vec<String> = result.records.iter().map(|r| r.case.display_call()).collect();
    assert_eq!(expected, got);
}

/// The flight recorder must be observationally transparent: turning it
/// on changes nothing about the campaign's deterministic surface —
/// records and rendered Table III / Fig. 8 are byte-identical — while
/// still capturing a per-test flight log for every test.
#[test]
fn flight_recorder_is_observationally_transparent() {
    let spec = subset();
    for threads in [1usize, 4] {
        let off = run_campaign(&EagleEye, &spec, &opts(threads));
        let on = run_campaign(&EagleEye, &spec, &CampaignOptions { record: true, ..opts(threads) });
        assert_eq!(fingerprint(&off), fingerprint(&on), "recorder divergence at {threads} threads");
        assert_eq!(
            rendered(&spec, &off),
            rendered(&spec, &on),
            "recorder render divergence at {threads} threads"
        );
        assert!(off.flight.is_none(), "no flight log unless requested");
        let flight = on.flight.as_ref().expect("recording run keeps its flight log");
        assert_eq!(flight.tests.len() as u64, spec.total_tests());
        // flights come back in campaign order, and executed (non-memoized)
        // tests carry real event streams
        assert!(flight.tests.iter().enumerate().all(|(i, t)| t.index == i));
        assert!(flight.tests.iter().any(|t| !t.events.is_empty()));
        // recording also feeds the latency histograms
        assert!(!on.metrics.hc_latency.is_empty());
        assert!(off.metrics.hc_latency.is_empty());
    }
}

// ---------------------------------------------------------------------------
// `campaign sweep` — the full cartesian invocation space
// ---------------------------------------------------------------------------

/// The spec behind `skrt-repro campaign sweep`: every hypercall in the
/// API header crossed with its complete dictionary product.
fn sweep_spec() -> CampaignSpec {
    let api = skrt::apispec::api_header_doc();
    xm_campaign::automatic_campaign(&api, &xm_campaign::paper_dictionary())
        .expect("sweep spec builds from the generated spec docs")
}

/// The sweep campaign is byte-identical across thread counts 1/4/16,
/// memoization on/off, and the flight recorder on/off. Unlike the fixed
/// pre-sliced shards of earlier engines, workers now pull and steal
/// index ranges dynamically — so every configuration here also runs a
/// different work-stealing schedule, and the assertion pins that the
/// schedule is invisible to the result surface.
#[test]
fn sweep_campaign_is_deterministic_across_threads_memo_and_recorder() {
    let spec = sweep_spec();
    let base = run_campaign(&EagleEye, &spec, &opts(1));
    let base_fp = fingerprint(&base);
    let base_render = rendered(&spec, &base);
    assert_eq!(base.records.len() as u64, spec.total_tests());
    for threads in [4usize, 16] {
        for memoize in [true, false] {
            for record in [true, false] {
                let other = run_campaign(
                    &EagleEye,
                    &spec,
                    &CampaignOptions { memoize, record, ..opts(threads) },
                );
                assert_eq!(
                    base_fp,
                    fingerprint(&other),
                    "sweep divergence at threads={threads} memo={memoize} record={record}"
                );
                assert_eq!(
                    base_render,
                    rendered(&spec, &other),
                    "sweep render divergence at threads={threads} memo={memoize} record={record}"
                );
            }
        }
    }
}

/// `--tests N` scaling is deterministic in both directions: below the
/// spec's size it truncates to exactly the first N cases; above it, the
/// extra tests cycle the case list from the start (keeping their
/// original suite and case identities), and the result is still
/// thread-count independent.
#[test]
fn sweep_max_tests_truncates_and_cycles_deterministically() {
    let spec = subset();
    let total = spec.total_tests() as usize;
    let full_fp = fingerprint(&run_campaign(&EagleEye, &spec, &opts(2)));

    let trunc = run_campaign(&EagleEye, &spec, &CampaignOptions { max_tests: Some(97), ..opts(2) });
    assert_eq!(fingerprint(&trunc), full_fp[..97], "truncation must keep the first 97 cases");

    let n = total + 113;
    let scaled = run_campaign(&EagleEye, &spec, &CampaignOptions { max_tests: Some(n), ..opts(1) });
    let scaled_fp = fingerprint(&scaled);
    assert_eq!(scaled_fp.len(), n);
    assert_eq!(scaled.metrics.tests_executed, n as u64);
    assert_eq!(scaled_fp[..total], full_fp[..], "the first lap is the unscaled campaign");
    assert_eq!(scaled_fp[total..], full_fp[..113], "cycled tests repeat from the start");

    let threaded =
        run_campaign(&EagleEye, &spec, &CampaignOptions { max_tests: Some(n), ..opts(16) });
    assert_eq!(scaled_fp, fingerprint(&threaded), "scaled run must be thread-count independent");
}

// ---------------------------------------------------------------------------
// Stateful sequence campaigns
// ---------------------------------------------------------------------------

/// Everything a sequence record asserts about the kernel, as a
/// comparable string: verdict, step attribution, state-diff evidence,
/// per-step outcomes and the minimal reproducer. This is the whole
/// deterministic surface of a sequence campaign.
fn seq_fingerprint(result: &skrt::sequence::SequenceCampaignResult) -> Vec<String> {
    result
        .records
        .iter()
        .map(|r| {
            let minimal = r.minimal.as_ref().map(|m| {
                let steps: Vec<String> = m.steps.iter().map(|s| s.to_string()).collect();
                format!(
                    "{:?}|{:?}|{}|{}|{}|{:?}",
                    steps, m.verdict, m.evals, m.removed_steps, m.shrunk_args, m.verdict.state_diff
                )
            });
            format!(
                "#{} seed={:#x} {:?} exec={} outcomes={:?} minimal={:?}",
                r.spec.index, r.spec.seed, r.verdict, r.steps_executed, r.outcomes, minimal
            )
        })
        .collect()
}

fn seq_run(threads: usize, memoize: bool, record: bool) -> xm_campaign::SequenceReport {
    xm_campaign::run_eagleeye_sequences(
        7,
        60,
        6,
        &skrt::sequence::SequenceOptions {
            build: KernelBuild::Legacy,
            threads,
            memoize,
            record,
            ..Default::default()
        },
    )
}

/// Sequence campaigns are byte-identical across thread counts 1/4/16,
/// with memoization on or off and the flight recorder on or off — same
/// seed, same fingerprints, same rendered report.
#[test]
fn sequence_campaign_is_deterministic_across_threads_memo_and_recorder() {
    let base = seq_run(1, true, false);
    let base_fp = seq_fingerprint(&base.result);
    let base_render = base.render();
    assert!(!base.result.divergences().is_empty(), "subset must exercise the divergence path");
    for threads in [1usize, 4, 16] {
        for memoize in [true, false] {
            for record in [true, false] {
                let other = seq_run(threads, memoize, record);
                assert_eq!(
                    base_fp,
                    seq_fingerprint(&other.result),
                    "sequence divergence at threads={threads} memo={memoize} record={record}"
                );
                assert_eq!(
                    base_render,
                    other.render(),
                    "render divergence at threads={threads} memo={memoize} record={record}"
                );
                // The recorder, when on, keeps one flight per sequence,
                // in campaign order; when off there is no flight log.
                match other.result.flight {
                    Some(ref flight) => {
                        assert!(record);
                        assert_eq!(flight.tests.len(), other.result.records.len());
                        assert!(flight.tests.iter().enumerate().all(|(i, t)| t.index == i));
                        assert!(flight.tests.iter().any(|t| !t.events.is_empty()));
                    }
                    None => assert!(!record),
                }
            }
        }
    }
}

/// Per-worker sequence memoization must be invisible to the result
/// surface while actually serving duplicate step lists from cache.
#[test]
fn sequence_memo_hits_duplicate_sequences_transparently() {
    // Tile 12 distinct sequences into 36 specs: 24 duplicates.
    let distinct = xm_campaign::eagleeye_sequence_specs(3, 12, 5);
    let specs: Vec<skrt::sequence::SequenceSpec> = (0..36)
        .map(|i| {
            let mut s = distinct[i % 12].clone();
            s.index = i;
            s
        })
        .collect();
    let opts = |memoize| skrt::sequence::SequenceOptions {
        build: KernelBuild::Legacy,
        threads: 1,
        memoize,
        ..Default::default()
    };
    let on = skrt::sequence::run_sequence_campaign(&EagleEye, &specs, &opts(true));
    let off = skrt::sequence::run_sequence_campaign(&EagleEye, &specs, &opts(false));
    // Spec index participates in the fingerprint, so compare with the
    // index normalised out: the verdict surface must be identical.
    let strip = |r: &skrt::sequence::SequenceCampaignResult| -> Vec<String> {
        seq_fingerprint(r)
            .into_iter()
            .map(|line| line.split_once(' ').unwrap().1.to_string())
            .collect()
    };
    assert_eq!(strip(&on), strip(&off));
    assert_eq!(on.metrics.memo_hits, 24, "one worker sees every duplicate");
    assert_eq!(off.metrics.memo_hits, 0);
    assert_eq!(on.metrics.tests_executed, 36);
}

/// The JSONL trace's per-test lines are deterministic across thread
/// counts (the trailing metrics line is run-specific by design).
#[test]
fn trace_test_lines_are_thread_count_independent() {
    let spec = subset();
    let dir = std::env::temp_dir();
    let mut lines = Vec::new();
    for threads in [1usize, 8] {
        let path = dir.join(format!("skrt_trace_{threads}.jsonl"));
        let o = CampaignOptions {
            build: KernelBuild::Legacy,
            threads,
            trace_path: Some(path.clone()),
            ..Default::default()
        };
        run_campaign(&EagleEye, &spec, &o);
        let text = std::fs::read_to_string(&path).expect("trace written");
        let _ = std::fs::remove_file(&path);
        let tests: Vec<String> = text
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"test\""))
            .map(String::from)
            .collect();
        assert_eq!(tests.len() as u64, spec.total_tests());
        lines.push(tests);
    }
    assert_eq!(lines[0], lines[1]);
}
