//! Determinism contract of the coverage-guided fuzzer: a run is a pure
//! function of (seed, alphabet, options) — thread count and the
//! recorder toggle must not change a single byte of the corpus, the
//! coverage map, the findings or the rendered report. On top of that,
//! every corpus entry must replay from its serialized form to the exact
//! coverage signature recorded at discovery time, and memoization (which
//! would silently starve the coverage feedback) must stay off whenever
//! coverage is being collected.

use eagleeye::EagleEye;
use skrt::fuzz::{parse_steps, replay_coverage, FuzzOptions};
use skrt::sequence::SequenceOptions;
use xm_campaign::fuzz::{finding_signature, run_eagleeye_fuzz, FuzzReport};
use xm_campaign::sequences::eagleeye_sequence_specs;
use xtratum::vuln::KernelBuild;

fn run(seed: u64, threads: usize, record: bool) -> FuzzReport {
    run_eagleeye_fuzz(&FuzzOptions {
        seed,
        threads,
        max_execs: 150,
        batch: 32,
        record,
        ..FuzzOptions::default()
    })
}

/// The full deterministic surface of a report, serialized: corpus files,
/// coverage map and findings (via the rendered report, which covers the
/// rediscovery table and every triage bundle).
fn surface(report: &FuzzReport) -> String {
    let mut out = String::new();
    for entry in &report.result.corpus {
        out.push_str(&entry.file_name());
        out.push('\n');
        out.push_str(&entry.render());
    }
    out.push_str(&report.result.map.render());
    out.push_str(&report.render());
    out
}

#[test]
fn thread_count_and_recorder_do_not_change_the_run() {
    let baseline = surface(&run(7, 1, false));
    assert!(!baseline.is_empty());
    for (threads, record) in [(4, false), (16, false), (1, true), (4, true), (16, true)] {
        let other = surface(&run(7, threads, record));
        assert_eq!(baseline, other, "fuzz run diverged at threads={threads} record={record}");
    }
}

/// Every corpus entry survives a serialize → parse → replay round trip
/// with the exact coverage signature recorded at discovery time, on a
/// fresh kernel boot. This is what makes corpus files reproducers and
/// the corpus portable across runs.
#[test]
fn corpus_entries_replay_to_their_recorded_signature() {
    let report = run(7, 4, false);
    assert!(!report.result.corpus.is_empty());
    let steps_per_slot = FuzzOptions::default().steps_per_slot;
    for entry in &report.result.corpus {
        let steps = parse_steps(&entry.render()).expect("corpus entry reparses");
        assert_eq!(steps, entry.steps, "entry {} reparse mismatch", entry.id);
        let (coverage, _) = replay_coverage(&EagleEye, KernelBuild::Legacy, &steps, steps_per_slot);
        assert_eq!(
            coverage.signature, entry.signature,
            "entry {} (exec {}) replayed to a different coverage signature",
            entry.id, entry.exec_index
        );
    }
}

/// Findings are deduplicated into signatures identically across thread
/// counts (a weaker but more legible restatement of the byte-equality
/// test above, and the property CI's rediscovery gate relies on).
#[test]
fn signatures_and_first_hits_are_thread_invariant() {
    let a = run(11, 1, false);
    let b = run(11, 16, true);
    assert_eq!(a.first_hits(), b.first_hits());
    let sigs_a: Vec<_> = a.result.findings.iter().map(finding_signature).collect();
    let sigs_b: Vec<_> = b.result.findings.iter().map(finding_signature).collect();
    assert_eq!(sigs_a, sigs_b);
}

/// Memo hits replay a cached verdict without executing anything, so a
/// memoized campaign would feed empty flight streams to the coverage
/// map and make duplicates look coverage-dead (or worse, novel-once).
/// `coverage_feedback` must force memoization off even when `memoize`
/// is explicitly requested.
#[test]
fn coverage_feedback_forces_memoization_off() {
    // Duplicate-heavy workload: the same 30 specs twice over.
    let mut specs = eagleeye_sequence_specs(3, 30, 6);
    let dup = specs.clone();
    specs.extend(dup);
    let opts = SequenceOptions {
        build: KernelBuild::Legacy,
        threads: 1,
        memoize: true,
        coverage_feedback: true,
        ..SequenceOptions::default()
    };
    let result = skrt::sequence::run_sequence_campaign(&EagleEye, &specs, &opts);
    assert_eq!(result.metrics.memo_hits, 0, "memo hit under coverage feedback");
    assert_eq!(result.metrics.memo_misses, 0, "memoization ran under coverage feedback");

    // Control: the same workload with feedback off does memoize, so the
    // assertion above is meaningful.
    let control = skrt::sequence::run_sequence_campaign(
        &EagleEye,
        &specs,
        &SequenceOptions { coverage_feedback: false, ..opts },
    );
    assert!(control.metrics.memo_hits > 0, "control workload never memoized");
}

/// The same guarantee on the single-call executor: `CampaignOptions::
/// coverage_feedback` overrides an explicit `memoize: true`.
#[test]
fn exec_campaign_coverage_feedback_disables_memo() {
    use skrt::exec::{run_campaign, CampaignOptions};
    let spec = xm_campaign::paper_campaign();
    let opts = CampaignOptions {
        build: KernelBuild::Legacy,
        threads: 1,
        memoize: true,
        coverage_feedback: true,
        ..CampaignOptions::default()
    };
    let result = run_campaign(&EagleEye, &spec, &opts);
    assert_eq!(result.metrics.memo_hits, 0, "memo hit under coverage feedback");
    assert_eq!(result.metrics.memo_misses, 0, "memoization ran under coverage feedback");

    let control =
        run_campaign(&EagleEye, &spec, &CampaignOptions { coverage_feedback: false, ..opts });
    assert!(control.metrics.memo_hits > 0, "control campaign never memoized");
}

/// The fuzzer itself never memoizes: candidate executions must all be
/// real executions for the map to see their streams.
#[test]
fn fuzzer_never_memoizes() {
    let report = run(5, 4, false);
    assert_eq!(report.result.metrics.memo_hits, 0);
    assert_eq!(report.result.metrics.memo_misses, 0);
    assert_eq!(report.result.metrics.tests_executed, report.result.execs);
}
