//! Integration coverage for the Section V extensions as library features
//! (the `stress_phantom` example demonstrates them; these tests pin their
//! behaviour).

use eagleeye::EagleEye;
use skrt::classify::CrashClass;
use skrt::phantom::{parameterless_hypercalls, phantom_library, run_phantom_test};
use skrt::stress::{run_stressed_case, StressScenario};
use skrt::suite::CampaignSpec;
use skrt::testbed::Testbed;
use xm_campaign::paper_campaign;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

#[test]
fn phantom_states_do_not_destabilise_parameterless_hypercalls() {
    let ctx = EagleEye.oracle_context(KernelBuild::Legacy);
    for hc in parameterless_hypercalls() {
        for ph in phantom_library() {
            let rec = run_phantom_test(&EagleEye, &ctx, KernelBuild::Legacy, hc, &ph);
            assert_eq!(
                rec.classification.class,
                CrashClass::Pass,
                "{} under {}: {:?}",
                hc.name(),
                ph.name,
                rec.classification
            );
            // The call executed at least once under every state except the
            // self-terminating ones (halt/idle/suspend end the slot).
            assert!(
                !rec.observation.invocations.is_empty(),
                "{} under {} never ran",
                hc.name(),
                ph.name
            );
        }
    }
}

#[test]
fn stress_preserves_the_set_timer_verdicts() {
    let spec: CampaignSpec = paper_campaign();
    let cases: Vec<_> =
        spec.all_cases().into_iter().filter(|c| c.hypercall == HypercallId::SetTimer).collect();
    assert_eq!(cases.len(), 28);
    let ctx = EagleEye.oracle_context(KernelBuild::Legacy);
    for scenario in StressScenario::ALL {
        let catastrophic = cases
            .iter()
            .map(|c| run_stressed_case(&EagleEye, &ctx, KernelBuild::Legacy, c, scenario))
            .filter(|r| r.classification.class == CrashClass::Catastrophic)
            .count();
        // Both crash datasets reproduce under every scenario; stress
        // neither masks nor fabricates catastrophic outcomes here.
        assert_eq!(catastrophic, 2, "{scenario:?}");
    }
}

#[test]
fn stress_scenarios_alone_are_harmless_on_the_patched_kernel() {
    let spec: CampaignSpec = paper_campaign();
    let cases: Vec<_> =
        spec.all_cases().into_iter().filter(|c| c.hypercall == HypercallId::GetTime).collect();
    let ctx = EagleEye.oracle_context(KernelBuild::Patched);
    for scenario in StressScenario::ALL {
        for case in &cases {
            let r = run_stressed_case(&EagleEye, &ctx, KernelBuild::Patched, case, scenario);
            assert_eq!(
                r.classification.class,
                CrashClass::Pass,
                "{} under {scenario:?}",
                case.display_call()
            );
        }
    }
}
