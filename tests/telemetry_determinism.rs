//! The telemetry layer must be observationally transparent: live-stats
//! heartbeats, the OpenMetrics/JSONL snapshot export and the
//! self-profiler are all *readers* of the run, never participants.
//! Turning any of them on must not change a byte of the deterministic
//! result surface, at any thread count, with or without memoization or
//! the flight recorder.

use eagleeye::EagleEye;
use skrt::exec::{run_campaign, CampaignOptions, CampaignResult, LiveStats};
use skrt::fuzz::FuzzOptions;
use skrt::report::{campaign_table, distribution, render_distribution, render_table};
use skrt::suite::CampaignSpec;
use std::path::PathBuf;
use std::time::Duration;
use xm_campaign::fuzz::{run_eagleeye_fuzz, FuzzReport};
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

/// A fresh heartbeat sink path per call; runs in this file overlap in
/// time, so the names carry a caller-chosen tag.
fn sink(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("skrt_telemetry_{}_{tag}.jsonl", std::process::id()))
}

fn subset() -> CampaignSpec {
    let full = xm_campaign::paper_campaign();
    let mut spec = CampaignSpec::new("telemetry subset");
    for s in full.suites {
        if matches!(
            s.hypercall,
            HypercallId::SetTimer | HypercallId::Multicall | HypercallId::MemoryCopy
        ) {
            spec.push(s);
        }
    }
    spec
}

/// Deterministic surface of a campaign: every record's classification
/// plus the rendered Table III / Fig. 8.
fn surface(spec: &CampaignSpec, result: &CampaignResult) -> String {
    let mut out = String::new();
    for r in &result.records {
        out.push_str(&r.case.display_call());
        out.push_str(&format!(
            " {:?}/{:?}/{:?}\n",
            r.classification,
            r.observation.first(),
            r.param_signature
        ));
    }
    out.push_str(&render_table(&campaign_table(spec, result)));
    out.push_str(&render_distribution(&distribution(spec)));
    out
}

/// Campaign results are byte-identical with live-stats streaming on or
/// off across threads 1/4/16 × memoization × recorder — a sub-second
/// interval forces real mid-run heartbeats, so the emitter thread and
/// its per-chunk progress folds demonstrably run while the surface
/// stays untouched.
#[test]
fn live_stats_is_observationally_transparent_for_campaigns() {
    let spec = subset();
    let base = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions { build: KernelBuild::Legacy, threads: 1, ..Default::default() },
    );
    let base_surface = surface(&spec, &base);
    for threads in [1usize, 4, 16] {
        for memoize in [true, false] {
            for record in [true, false] {
                let path = sink(&format!("camp_{threads}_{memoize}_{record}"));
                let live = run_campaign(
                    &EagleEye,
                    &spec,
                    &CampaignOptions {
                        build: KernelBuild::Legacy,
                        threads,
                        memoize,
                        record,
                        live_stats: Some(LiveStats::new(path.clone(), Duration::from_millis(1))),
                        ..Default::default()
                    },
                );
                let stream = std::fs::read_to_string(&path).expect("heartbeat sink written");
                let _ = std::fs::remove_file(&path);
                assert_eq!(live.live_stats_error, None);
                assert_eq!(
                    base_surface,
                    surface(&spec, &live),
                    "live-stats divergence at threads={threads} memo={memoize} record={record}"
                );
                // The stream really happened and ends with the final line.
                let last = stream.lines().last().expect("at least the final heartbeat");
                assert!(last.contains("\"final\":true"), "unterminated stream: {last}");
            }
        }
    }
}

/// Rendering the telemetry registry (the `--metrics-out` export) is a
/// pure read of the folded metrics: exporting both formats leaves the
/// result untouched, and the OpenMetrics text carries the counters the
/// CI validator requires, terminated by `# EOF`.
#[test]
fn metrics_export_is_a_pure_read() {
    let spec = subset();
    let opts = CampaignOptions { build: KernelBuild::Legacy, threads: 4, ..Default::default() };
    let result = run_campaign(&EagleEye, &spec, &opts);
    let before = surface(&spec, &result);

    let registry = result.metrics.telemetry("telemetry-test");
    let prom = registry.render_openmetrics();
    let jsonl = registry.render_jsonl();

    assert_eq!(before, surface(&spec, &result), "export perturbed the result");
    for family in
        ["skrt_campaign_info", "skrt_tests_executed", "skrt_verdicts", "skrt_wall_seconds"]
    {
        assert!(prom.contains(family), "OpenMetrics snapshot lacks {family}:\n{prom}");
        assert!(jsonl.contains(family), "JSONL snapshot lacks {family}");
    }
    assert!(prom.ends_with("# EOF\n"), "missing OpenMetrics terminator");
    // Repeated export of the same result is itself deterministic.
    assert_eq!(prom, result.metrics.telemetry("telemetry-test").render_openmetrics());
}

fn fuzz_run(threads: usize, record: bool, live: Option<LiveStats>) -> FuzzReport {
    run_eagleeye_fuzz(&FuzzOptions {
        seed: 7,
        threads,
        max_execs: 150,
        batch: 32,
        record,
        live_stats: live,
        ..FuzzOptions::default()
    })
}

/// Deterministic surface of a fuzz run: corpus files, coverage map and
/// the rendered report (which now includes the coverage-introspection
/// section — occupancy curve, corpus composition, hottest edges).
fn fuzz_surface(report: &FuzzReport) -> String {
    let mut out = String::new();
    for entry in &report.result.corpus {
        out.push_str(&entry.file_name());
        out.push('\n');
        out.push_str(&entry.render());
    }
    out.push_str(&report.result.map.render());
    out.push_str(&report.render());
    out
}

/// Fuzz campaigns are byte-identical with the live heartbeat on or off
/// across threads and the recorder toggle. The driver emits between
/// rounds from already-folded state, so this pins that the stream can
/// never observe (or induce) anything the plain run would not.
#[test]
fn live_stats_is_observationally_transparent_for_fuzzing() {
    let base = fuzz_surface(&fuzz_run(1, false, None));
    assert!(!base.is_empty());
    for threads in [1usize, 4, 16] {
        for record in [false, true] {
            let path = sink(&format!("fuzz_{threads}_{record}"));
            let report =
                fuzz_run(threads, record, Some(LiveStats::new(path.clone(), Duration::ZERO)));
            let stream = std::fs::read_to_string(&path).expect("heartbeat sink written");
            let _ = std::fs::remove_file(&path);
            assert_eq!(report.result.live_stats_error, None);
            assert_eq!(
                base,
                fuzz_surface(&report),
                "fuzz live-stats divergence at threads={threads} record={record}"
            );
            // Interval zero → one heartbeat per round plus the final line.
            let lines: Vec<&str> = stream.lines().collect();
            assert_eq!(lines.len(), report.result.rounds.len() + 1);
            assert!(lines.last().unwrap().contains("\"final\":true"));
            assert!(lines.iter().all(|l| l.contains("\"type\":\"fuzz_live\"")));
        }
    }
}

/// An unwritable heartbeat sink must never fail or perturb the run: the
/// error is captured in `live_stats_error` and the campaign completes
/// with an identical surface.
#[test]
fn live_stats_sink_errors_are_captured_not_fatal() {
    let spec = subset();
    let opts = |live| CampaignOptions {
        build: KernelBuild::Legacy,
        threads: 2,
        live_stats: live,
        ..Default::default()
    };
    let plain = run_campaign(&EagleEye, &spec, &opts(None));
    let bad_path = std::env::temp_dir().join("skrt_no_such_dir").join("x").join("live.jsonl");
    let broken = run_campaign(
        &EagleEye,
        &spec,
        &opts(Some(LiveStats::new(bad_path, Duration::from_millis(1)))),
    );
    let err = broken.live_stats_error.as_deref().expect("sink failure must be reported");
    assert!(err.contains("skrt_no_such_dir"), "error should name the path: {err}");
    assert_eq!(surface(&spec, &plain), surface(&spec, &broken));
}
