//! Single-fix ablation study (experiment A1 extended): starting from the
//! legacy kernel, apply each documented fix in isolation and re-run the
//! full campaign. Each fix removes exactly its own findings — and, where
//! the fix tightened the *documented* contract (the 50 µs minimum
//! interval, the multicall batch bound), fixing the kernel while keeping
//! the old manual makes the oracle flag the divergence as Hindering,
//! illustrating why the XM team shipped manual revisions alongside the
//! patches.

use eagleeye::testbed::EagleEyeAblation;
use skrt::classify::{Cause, CrashClass};
use skrt::exec::{run_campaign, CampaignOptions};
use xm_campaign::paper_campaign;
use xtratum::vuln::{KernelBuild, VulnFlags};

fn run_with(flags: VulnFlags) -> skrt::exec::CampaignResult {
    let tb = EagleEyeAblation { flags, docs: KernelBuild::Legacy };
    run_campaign(
        &tb,
        &paper_campaign(),
        &CampaignOptions { build: KernelBuild::Legacy, ..Default::default() },
    )
}

#[test]
fn baseline_all_defects_is_nine() {
    let result = run_with(VulnFlags::LEGACY);
    assert_eq!(result.issues().len(), 9);
}

#[test]
fn fixing_reset_system_removes_exactly_its_three_issues() {
    let flags = VulnFlags { reset_system_mode_unchecked: false, ..VulnFlags::LEGACY };
    let issues = run_with(flags).issues();
    assert_eq!(issues.len(), 6, "{issues:#?}");
    assert!(issues.iter().all(|i| i.key.hypercall != xtratum::hypercall::HypercallId::ResetSystem));
}

#[test]
fn fixing_negative_interval_removes_the_silent_issue() {
    let flags = VulnFlags { set_timer_negative_interval_accepted: false, ..VulnFlags::LEGACY };
    let issues = run_with(flags).issues();
    assert_eq!(issues.len(), 8, "{issues:#?}");
    assert!(issues.iter().all(|i| i.key.class != CrashClass::Silent));
}

#[test]
fn fixing_multicall_pointer_validation_removes_both_abort_issues() {
    let flags = VulnFlags { multicall_no_pointer_validation: false, ..VulnFlags::LEGACY };
    let issues = run_with(flags).issues();
    assert_eq!(issues.len(), 7, "{issues:#?}");
    assert!(issues.iter().all(|i| i.key.cause != Cause::UnhandledServiceException));
    // The temporal break is still present (batches are still unbounded).
    assert!(issues.iter().any(|i| i.key.cause == Cause::TemporalOverrun));
}

#[test]
fn fixing_min_interval_trades_crashes_for_a_doc_mismatch() {
    let flags = VulnFlags { set_timer_no_min_interval: false, ..VulnFlags::LEGACY };
    let issues = run_with(flags).issues();
    // The kernel halt and the simulator crash are gone...
    assert!(issues.iter().all(|i| i.key.cause != Cause::KernelHalt));
    assert!(issues.iter().all(|i| i.key.cause != Cause::SimulatorCrash));
    // ... but rejecting 1 µs / 49 µs intervals contradicts the *old*
    // manual, which the oracle reports as a Hindering finding.
    let hindering: Vec<_> =
        issues.iter().filter(|i| i.key.class == CrashClass::Hindering).collect();
    assert_eq!(hindering.len(), 1, "{issues:#?}");
    assert_eq!(issues.len(), 8, "{issues:#?}");
}

#[test]
fn bounding_multicall_batches_also_shields_the_missing_pointer_checks() {
    let flags = VulnFlags { multicall_unbounded_batch: false, ..VulnFlags::LEGACY };
    let issues = run_with(flags).issues();
    assert!(issues.iter().all(|i| i.key.cause != Cause::TemporalOverrun));
    // Interesting interaction: the batch bound rejects every campaign
    // dataset whose pointer gap is large — which is exactly the datasets
    // that used to reach the missing pointer validation. All three
    // multicall findings disappear behind the single bound...
    assert!(issues.iter().all(|i| i.key.hypercall != xtratum::hypercall::HypercallId::Multicall
        || i.key.class == CrashClass::Hindering));
    // ... except that rejecting a large *valid* batch contradicts the old
    // manual — one Hindering doc-mismatch finding.
    let hindering = issues.iter().filter(|i| i.key.class == CrashClass::Hindering).count();
    assert_eq!(hindering, 1, "{issues:#?}");
    assert_eq!(issues.len(), 7, "{issues:#?}"); // 6 non-multicall + 1 doc mismatch
}

#[test]
fn issue_diff_tracks_fix_progress() {
    let baseline = run_with(VulnFlags::LEGACY).issues();
    let candidate = run_with(VulnFlags {
        reset_system_mode_unchecked: false,
        set_timer_negative_interval_accepted: false,
        ..VulnFlags::LEGACY
    })
    .issues();
    let diff = skrt::report::diff_issues(&baseline, &candidate);
    assert_eq!(diff.closed.len(), 4, "{}", skrt::report::render_diff(&diff));
    assert_eq!(diff.remaining.len(), 5);
    assert_eq!(diff.introduced.len(), 0);
    let text = skrt::report::render_diff(&diff);
    assert!(text.contains("4 closed, 5 remaining, 0 introduced"), "{text}");
}

#[test]
fn all_fixes_with_revised_docs_is_clean() {
    // The shipped outcome: patched kernel + revised manual.
    let tb = EagleEyeAblation { flags: VulnFlags::PATCHED, docs: KernelBuild::Patched };
    let result = run_campaign(
        &tb,
        &paper_campaign(),
        &CampaignOptions { build: KernelBuild::Patched, ..Default::default() },
    );
    assert_eq!(result.issues().len(), 0);
}
