//! End-to-end validation of the stateful sequence campaign: on the
//! legacy build a modest seeded campaign must rediscover the paper's
//! injected defects as *minimal* sequences, and on the patched build the
//! differential state oracle must stay completely silent.

use skrt::classify::{Cause, CrashClass};
use skrt::fuzz::FuzzOptions;
use skrt::sequence::SequenceOptions;
use xm_campaign::fuzz::{finding_signature, run_eagleeye_fuzz, stateful_defect_signatures};
use xm_campaign::sequences::{run_eagleeye_sequences, signature_of, SequenceReport};
use xtratum::hypercall::HypercallId;
use xtratum::observe::ResetKind;
use xtratum::vuln::KernelBuild;

fn legacy_report() -> SequenceReport {
    run_eagleeye_sequences(
        1,
        150,
        8,
        &SequenceOptions { build: KernelBuild::Legacy, ..Default::default() },
    )
}

/// The three paper defects the issue's acceptance criteria name: the
/// multicall temporal-isolation break and both `XM_set_timer` defects.
/// Each must surface, attributed to the right hypercall, with a minimal
/// reproducer of at most 3 steps.
#[test]
fn legacy_rediscovers_required_defects_as_minimal_sequences() {
    let report = legacy_report();
    let divergences = report.result.divergences();
    assert!(!divergences.is_empty(), "legacy campaign found nothing:\n{}", report.render());

    let has = |class: CrashClass, cause_ok: &dyn Fn(&Cause) -> bool, id: HypercallId| {
        divergences.iter().any(|rec| {
            let sig = signature_of(rec);
            sig.classification.class == class
                && cause_ok(&sig.classification.cause)
                && sig.hypercall == Some(id)
                && rec.minimal.as_ref().is_some_and(|m| m.steps.len() <= 3)
        })
    };

    // XM_multicall: a 2048-entry batch overruns FDIR's 60 ms plan-0 slot
    // (81.92 ms of entry decoding) — the temporal isolation break.
    assert!(
        has(CrashClass::Restart, &|c| *c == Cause::TemporalOverrun, HypercallId::Multicall),
        "multicall temporal break not rediscovered:\n{}",
        report.render()
    );
    // XM_set_timer defect 1: HW-clock interval 1 µs => vtimer handler
    // re-entry => kernel trap => system halt.
    assert!(
        has(CrashClass::Catastrophic, &|c| *c == Cause::KernelHalt, HypercallId::SetTimer),
        "set_timer kernel-halt defect not rediscovered:\n{}",
        report.render()
    );
    // XM_set_timer defect 2: EXEC-clock interval 1 µs => IRQ flood =>
    // simulator death.
    assert!(
        has(CrashClass::Catastrophic, &|c| *c == Cause::SimulatorCrash, HypercallId::SetTimer),
        "set_timer simulator-crash defect not rediscovered:\n{}",
        report.render()
    );
    // Bonus Table III defects reachable from the same alphabet: the
    // legacy mode&1 decode of XM_reset_system turns documented invalid
    // modes into real system resets.
    assert!(
        has(
            CrashClass::Catastrophic,
            &|c| matches!(c, Cause::UnexpectedSystemReset(ResetKind::Cold | ResetKind::Warm)),
            HypercallId::ResetSystem
        ),
        "reset_system mode-decode defect not rediscovered:\n{}",
        report.render()
    );
}

/// Every diverging sequence must come with a shrunk reproducer that
/// still reproduces (same classification when re-run), and shrinking
/// must actually reduce: no minimal reproducer is longer than its
/// original sequence.
#[test]
fn every_divergence_ships_a_faithful_minimal_reproducer() {
    let report = legacy_report();
    let divergences = report.result.divergences();
    assert!(!divergences.is_empty());
    for rec in &divergences {
        let m = rec
            .minimal
            .as_ref()
            .unwrap_or_else(|| panic!("divergence #{} has no minimal reproducer", rec.spec.index));
        assert!(!m.steps.is_empty(), "#{}: empty reproducer", rec.spec.index);
        assert!(
            m.steps.len() <= rec.spec.steps.len(),
            "#{}: reproducer grew ({} > {})",
            rec.spec.index,
            m.steps.len(),
            rec.spec.steps.len()
        );
        assert_eq!(
            m.verdict.classification,
            rec.verdict.classification,
            "#{}: minimal reproducer no longer reproduces the verdict\n{}",
            rec.spec.index,
            report.render()
        );
        assert!(
            !m.verdict.state_diff.is_empty(),
            "#{}: triage bundle has no state-diff evidence",
            rec.spec.index
        );
    }
}

/// Fuzz mode: the coverage-guided fuzzer must rediscover **all seven**
/// canonical stateful defect signatures on the legacy build within a
/// bounded candidate-execution budget, and every one must shrink to a
/// single-step reproducer.
#[test]
fn fuzzer_rediscovers_all_seven_signatures_within_budget() {
    let report =
        run_eagleeye_fuzz(&FuzzOptions { seed: 1, max_execs: 600, ..FuzzOptions::default() });
    for (sig, first) in report.first_hits() {
        assert!(
            first.is_some(),
            "signature {sig:?} not rediscovered within 600 executions:\n{}",
            report.render()
        );
    }
    // Every canonical signature shrinks to one step.
    for sig in stateful_defect_signatures() {
        let best = report
            .result
            .findings
            .iter()
            .filter(|f| finding_signature(f) == sig)
            .filter_map(|f| f.minimal.as_ref())
            .map(|m| m.steps.len())
            .min();
        assert_eq!(best, Some(1), "signature {sig:?} did not shrink to one step");
    }
}

/// Fuzz mode on the patched build: the same budget must come back
/// completely clean — any finding would be an oracle (or fuzzer) bug.
#[test]
fn fuzzer_stays_silent_on_patched() {
    let report = run_eagleeye_fuzz(&FuzzOptions {
        seed: 1,
        max_execs: 600,
        build: KernelBuild::Patched,
        ..FuzzOptions::default()
    });
    assert_eq!(report.result.execs, 600);
    assert!(
        report.result.findings.is_empty(),
        "patched build diverged under fuzzing:\n{}",
        report.render()
    );
    // Coverage still accumulates on a clean build: the map is feedback,
    // not a defect detector.
    assert!(report.result.map.fill() > 0);
    assert!(!report.result.corpus.is_empty());
}

/// The patched build must be divergence-free under the same campaign:
/// the reference state machine models every alphabet entry exactly, so
/// any verdict here would be an oracle bug, not a kernel bug.
#[test]
fn patched_build_stays_silent() {
    let report = run_eagleeye_sequences(
        1,
        150,
        8,
        &SequenceOptions { build: KernelBuild::Patched, ..Default::default() },
    );
    assert_eq!(
        report.result.divergences().len(),
        0,
        "patched build diverged:\n{}",
        report.render()
    );
    assert!(report
        .result
        .records
        .iter()
        .all(|r| r.verdict.classification.class == CrashClass::Pass));
}
