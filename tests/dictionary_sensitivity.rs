//! Dictionary-sensitivity experiment (motivated by Sections III.A/IV.B:
//! "test datasets are key to the reliability and confidence in the
//! robustness testing results" and "different invalid values often elicit
//! different system responses").
//!
//! The same `XM_set_timer` suite is run with three dictionaries of
//! increasing richness. Only the full paper dictionary finds all three
//! findings: a naive boundary-only dictionary misses the 1 µs recursion
//! crash entirely (1 is not a 64-bit boundary), and a positive-values
//! dictionary misses the silent negative interval.

use eagleeye::EagleEye;
use skrt::classify::{Cause, CrashClass};
use skrt::dictionary::TestValue;
use skrt::exec::{run_campaign, CampaignOptions};
use skrt::suite::{CampaignSpec, TestSuite};
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn set_timer_suite(intervals: &[i64]) -> CampaignSpec {
    let mut spec = CampaignSpec::new("set_timer sensitivity");
    spec.push(
        TestSuite::with_matrix(
            HypercallId::SetTimer,
            vec![
                vec![TestValue::scalar(0), TestValue::scalar(1)],
                vec![TestValue::scalar(1)],
                intervals.iter().map(|&v| TestValue::scalar(v as u64)).collect(),
            ],
        )
        .unwrap(),
    );
    spec
}

fn causes(intervals: &[i64]) -> Vec<Cause> {
    let spec = set_timer_suite(intervals);
    let result = run_campaign(
        &EagleEye,
        &spec,
        &CampaignOptions { build: KernelBuild::Legacy, ..Default::default() },
    );
    result.issues().iter().map(|i| i.key.cause).collect()
}

#[test]
fn boundary_only_dictionary_misses_the_crashes() {
    // Pure 64-bit boundary values: no small positive interval at all.
    let found = causes(&[i64::MIN, -1, 0, i64::MAX]);
    assert!(!found.contains(&Cause::KernelHalt), "{found:?}");
    assert!(!found.contains(&Cause::SimulatorCrash), "{found:?}");
    // ... it still catches the silent negative interval.
    assert!(found.contains(&Cause::WrongSuccess), "{found:?}");
}

#[test]
fn positive_only_dictionary_misses_the_silent_finding() {
    let found = causes(&[1, 50, 1_000_000]);
    assert!(found.contains(&Cause::KernelHalt), "{found:?}");
    assert!(found.contains(&Cause::SimulatorCrash), "{found:?}");
    assert!(!found.contains(&Cause::WrongSuccess), "{found:?}");
}

#[test]
fn the_paper_dictionary_finds_all_three() {
    let found = causes(&[i64::MIN, 0, 1, 49, 50, 1_000_000, i64::MAX]);
    for cause in [Cause::KernelHalt, Cause::SimulatorCrash, Cause::WrongSuccess] {
        assert!(found.contains(&cause), "missing {cause:?} in {found:?}");
    }
    assert_eq!(found.len(), 3);
}

#[test]
fn richer_dictionaries_never_lose_findings() {
    // Monotonicity: adding values can only add (or merge into) findings.
    let base: Vec<i64> = vec![i64::MIN, 0, 1];
    let richer: Vec<i64> = vec![i64::MIN, -1, 0, 1, 2, 49, 50, i64::MAX];
    let a: std::collections::BTreeSet<Cause> = causes(&base).into_iter().collect();
    let b: std::collections::BTreeSet<Cause> = causes(&richer).into_iter().collect();
    assert!(a.is_subset(&b), "{a:?} ⊄ {b:?}");
}

#[test]
fn anti_masking_values_matter_for_multicall() {
    // Without a *valid* pointer in the dictionary, every multicall test
    // fails at the first parameter and the endAddr defect (I8) is fully
    // masked — the Fig. 7 lesson, measured.
    let tb = EagleEye;
    let run = |ptrs: Vec<TestValue>| {
        let mut spec = CampaignSpec::new("mc");
        spec.push(
            TestSuite::with_matrix(HypercallId::Multicall, vec![ptrs.clone(), ptrs]).unwrap(),
        );
        run_campaign(
            &tb,
            &spec,
            &CampaignOptions { build: KernelBuild::Legacy, ..Default::default() },
        )
    };
    // invalid-only pointers: one grouped finding at parameter 1
    let invalid_only = run(vec![
        TestValue::bad_ptr(0, "NULL"),
        TestValue::bad_ptr(1, "UNALIGNED"),
        TestValue::bad_ptr(0xFFFF_FFFC, "UNMAPPED"),
    ]);
    let issues = invalid_only.issues();
    assert!(issues.iter().all(|i| i.key.param.map(|(p, _)| p) != Some(1)), "{issues:#?}");
    // mixed valid+invalid: the second parameter's defect surfaces too
    let mixed = run(vec![
        TestValue::bad_ptr(0, "NULL"),
        TestValue::good_ptr(eagleeye::BATCH_START as u64, "BATCH_START"),
        TestValue::bad_ptr(0xFFFF_FFFC, "UNMAPPED"),
    ]);
    let issues = mixed.issues();
    assert!(
        issues
            .iter()
            .any(|i| i.key.param.map(|(p, _)| p) == Some(1) && i.key.class == CrashClass::Abort),
        "{issues:#?}"
    );
}
