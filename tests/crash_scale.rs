//! End-to-end coverage of the CRASH severity scale (paper Section III.C):
//! every class is reachable on the full stack and attributed to the
//! documented finding.

use eagleeye::map::*;
use eagleeye::EagleEye;
use skrt::classify::{Cause, CrashClass};
use skrt::dictionary::TestValue;
use skrt::exec::run_single_test;
use skrt::suite::TestCase;
use skrt::testbed::Testbed;
use xtratum::hypercall::HypercallId;
use xtratum::vuln::KernelBuild;

fn run(build: KernelBuild, hc: HypercallId, vals: Vec<TestValue>) -> skrt::exec::TestRecord {
    let tb = EagleEye;
    let ctx = tb.oracle_context(build);
    let case = TestCase { hypercall: hc, dataset: vals, suite_index: 0, case_index: 0 };
    run_single_test(&tb, &ctx, build, &case)
}

fn s(v: i64) -> TestValue {
    TestValue::scalar(v as u64)
}

#[test]
fn pass_nominal_call() {
    let r = run(KernelBuild::Legacy, HypercallId::GetTime, vec![s(0), s(SCRATCH as i64)]);
    assert_eq!(r.classification.class, CrashClass::Pass);
}

#[test]
fn catastrophic_kernel_halt_via_set_timer() {
    let r = run(KernelBuild::Legacy, HypercallId::SetTimer, vec![s(0), s(1), s(1)]);
    assert_eq!(r.classification.class, CrashClass::Catastrophic);
    assert_eq!(r.classification.cause, Cause::KernelHalt);
    assert!(r.observation.summary.kernel_halt_reason.is_some());
}

#[test]
fn catastrophic_simulator_crash_via_set_timer() {
    let r = run(KernelBuild::Legacy, HypercallId::SetTimer, vec![s(1), s(1), s(1)]);
    assert_eq!(r.classification.class, CrashClass::Catastrophic);
    assert_eq!(r.classification.cause, Cause::SimulatorCrash);
}

#[test]
fn catastrophic_unexpected_reset_via_reset_system() {
    let r = run(KernelBuild::Legacy, HypercallId::ResetSystem, vec![s(16)]);
    assert_eq!(r.classification.class, CrashClass::Catastrophic);
    assert!(matches!(r.classification.cause, Cause::UnexpectedSystemReset(_)));
    // ... while a documented reset passes:
    let ok = run(KernelBuild::Legacy, HypercallId::ResetSystem, vec![s(0)]);
    assert_eq!(ok.classification.class, CrashClass::Pass);
}

#[test]
fn restart_temporal_overrun_via_multicall() {
    let r = run(
        KernelBuild::Legacy,
        HypercallId::Multicall,
        vec![s(BATCH_START as i64), s(BATCH_END as i64)],
    );
    assert_eq!(r.classification.class, CrashClass::Restart);
    assert_eq!(r.classification.cause, Cause::TemporalOverrun);
}

#[test]
fn abort_unhandled_exception_via_multicall() {
    let r = run(KernelBuild::Legacy, HypercallId::Multicall, vec![s(0), s(BATCH_END as i64)]);
    assert_eq!(r.classification.class, CrashClass::Abort);
    assert_eq!(r.classification.cause, Cause::UnhandledServiceException);
    assert_eq!(r.param_signature.map(|(i, _)| i), Some(0));
    // end-pointer variant blames parameter 1
    let r2 = run(
        KernelBuild::Legacy,
        HypercallId::Multicall,
        vec![s(BATCH_START as i64), s(UNMAPPED_TOP as i64)],
    );
    assert_eq!(r2.classification.class, CrashClass::Abort);
    assert_eq!(r2.param_signature.map(|(i, _)| i), Some(1));
}

#[test]
fn silent_negative_interval() {
    for clock in [0i64, 1] {
        let r = run(
            KernelBuild::Legacy,
            HypercallId::SetTimer,
            vec![s(clock), s(1), TestValue::scalar(i64::MIN as u64)],
        );
        assert_eq!(r.classification.class, CrashClass::Silent, "clock {clock}");
        assert_eq!(r.classification.cause, Cause::WrongSuccess);
    }
}

/// A testbed whose prologue suspends the test partition before the first
/// injection: the fault placeholder never executes — the "test fails to
/// return" situation of Section III.C, which must classify as a
/// Restart-class hang rather than pass silently.
struct HangingTestbed;

fn suspending_prologue(api: &mut xtratum::guest::PartitionApi<'_>) {
    let _ = api.hypercall(&xtratum::hypercall::RawHypercall::new_unchecked(
        HypercallId::SuspendSelf,
        vec![],
    ));
}

impl Testbed for HangingTestbed {
    fn boot(&self, build: KernelBuild) -> (xtratum::kernel::XmKernel, xtratum::guest::GuestSet) {
        EagleEye.boot(build)
    }
    fn test_partition(&self) -> u32 {
        FDIR
    }
    fn prologue(&self) -> fn(&mut xtratum::guest::PartitionApi<'_>) {
        suspending_prologue
    }
    fn oracle_context(&self, build: KernelBuild) -> skrt::oracle::OracleContext {
        EagleEye.oracle_context(build)
    }
}

#[test]
fn restart_hang_when_the_test_never_runs() {
    let tb = HangingTestbed;
    let ctx = tb.oracle_context(KernelBuild::Patched);
    let case = TestCase {
        hypercall: HypercallId::GetTime,
        dataset: vec![s(0), s(SCRATCH as i64)],
        suite_index: 0,
        case_index: 0,
    };
    let r = run_single_test(&tb, &ctx, KernelBuild::Patched, &case);
    assert!(r.observation.never_ran());
    assert_eq!(r.classification.class, CrashClass::Restart);
    assert_eq!(r.classification.cause, Cause::PartitionHang);
}

#[test]
fn all_six_classes_are_distinct_labels() {
    let labels: std::collections::BTreeSet<&str> = [
        CrashClass::Pass,
        CrashClass::Catastrophic,
        CrashClass::Restart,
        CrashClass::Abort,
        CrashClass::Silent,
        CrashClass::Hindering,
    ]
    .iter()
    .map(|c| c.label())
    .collect();
    assert_eq!(labels.len(), 6);
}

#[test]
fn every_class_resolves_on_patched_build() {
    // The same five injections are all robust after the fixes.
    let cases: Vec<(HypercallId, Vec<TestValue>)> = vec![
        (HypercallId::SetTimer, vec![s(0), s(1), s(1)]),
        (HypercallId::SetTimer, vec![s(1), s(1), s(1)]),
        (HypercallId::ResetSystem, vec![s(16)]),
        (HypercallId::Multicall, vec![s(BATCH_START as i64), s(BATCH_END as i64)]),
        (HypercallId::Multicall, vec![s(0), s(BATCH_END as i64)]),
        (HypercallId::SetTimer, vec![s(0), s(1), TestValue::scalar(i64::MIN as u64)]),
    ];
    for (hc, vals) in cases {
        let r = run(KernelBuild::Patched, hc, vals);
        assert_eq!(
            r.classification.class,
            CrashClass::Pass,
            "{} still fails on patched: {:?}",
            r.case.display_call(),
            r.classification
        );
    }
}
