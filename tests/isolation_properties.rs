//! Cross-crate isolation properties: the two pillars of TSP (paper
//! Section I) hold on the full EagleEye stack under randomized abuse.
//!
//! * **Spatial partitioning**: no guest can modify memory outside its
//!   assigned areas, whatever addresses it tries.
//! * **Temporal partitioning**: a partition that overruns its slot is
//!   detected and contained; other partitions keep their slots.

use eagleeye::map::*;
use eagleeye::EagleEye;
use leon3_sim::addrspace::AccessCtx;
use skrt::testbed::Testbed;
use xtratum::guest::{GuestProgram, PartitionApi};
use xtratum::hm::HmEventKind;
use xtratum::partition::PartitionStatus;
use xtratum::vuln::KernelBuild;

/// A guest that tries to write a list of arbitrary addresses, then keeps
/// computing if it survives.
struct RogueWriter {
    addrs: Vec<u32>,
}

impl GuestProgram for RogueWriter {
    fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
        for &a in &self.addrs {
            if api.write_u32(a, 0xBADC_0DE0).is_err() {
                return; // faulted (and possibly halted)
            }
        }
        api.consume(1_000);
    }
}

/// A guest that deliberately overruns its slot by `extra_us`.
struct Overrunner {
    extra_us: u64,
}

impl GuestProgram for Overrunner {
    fn run_slot(&mut self, api: &mut PartitionApi<'_>) {
        let budget = api.budget_us();
        api.consume(budget + self.extra_us);
    }
}

/// Whatever addresses a rogue AOCS writes, FDIR/kernel memory is
/// never modified and the kernel survives.
#[test]
fn spatial_isolation_survives_arbitrary_writes() {
    testkit::check("spatial_isolation_survives_arbitrary_writes", 64, |rng| {
        let addrs = rng.vec_of(1, 6, |r| r.next_u32());
        let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
        guests.set(AOCS, Box::new(RogueWriter { addrs: addrs.clone() }));
        let summary = kernel.run_major_frames(&mut guests, 2);

        // The kernel itself never dies from partition-level memory abuse.
        assert!(summary.kernel_halt_reason.is_none());

        // Nothing outside AOCS memory was written: kernel region word and
        // FDIR scratch stay pristine.
        let probe_kernel = kernel.machine.mem.read_u32(AccessCtx::Kernel, KERNEL_PTR).unwrap();
        assert_ne!(probe_kernel, 0xBADC_0DE0);
        let probe_fdir = kernel.machine.mem.read_u32(AccessCtx::Kernel, SCRATCH).unwrap();
        assert_ne!(probe_fdir, 0xBADC_0DE0);

        // If any write hit foreign/unmapped memory, the HM must have
        // flagged AOCS (and only AOCS).
        let foreign = addrs
            .iter()
            .any(|&a| !(a >= part_base(AOCS) && a < part_base(AOCS) + PART_SIZE - 3) || a % 4 != 0);
        if foreign {
            let flagged = summary.hm_log.iter().any(|e| {
                e.partition == Some(AOCS) && matches!(e.kind, HmEventKind::PartitionTrap { .. })
            });
            assert!(flagged);
            assert_eq!(summary.partition_final[AOCS as usize], PartitionStatus::Halted);
        } else {
            assert_eq!(summary.hm_log.len(), 1); // FDIR boot event only
        }
        // Other partitions keep running either way.
        for p in [FDIR, PAYLOAD, TMTC, HK] {
            assert!(summary.partition_final[p as usize].schedulable());
        }
    });
}

/// Whatever the overrun amount, temporal violations are detected,
/// attributed to the right partition, and contained.
#[test]
fn temporal_isolation_detects_any_overrun() {
    testkit::check("temporal_isolation_detects_any_overrun", 64, |rng| {
        let extra = rng.range_u64(1, 200_000);
        let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
        guests.set(PAYLOAD, Box::new(Overrunner { extra_us: extra }));
        let summary = kernel.run_major_frames(&mut guests, 2);

        assert!(summary.kernel_halt_reason.is_none());
        let overruns: Vec<u64> = summary
            .hm_log
            .iter()
            .filter(|e| e.partition == Some(PAYLOAD))
            .filter_map(|e| match e.kind {
                HmEventKind::SchedOverrun { overrun_us } => Some(overrun_us),
                _ => None,
            })
            .collect();
        assert!(!overruns.is_empty());
        assert!(overruns.iter().all(|&o| o == extra), "{overruns:?} vs {extra}");
        // EagleEye's HM table warm-resets the offender: it is schedulable
        // again afterwards.
        assert!(summary.partition_final[PAYLOAD as usize].schedulable());
        // Nobody else was blamed.
        let all_payload = summary
            .hm_log
            .iter()
            .filter(|e| matches!(e.kind, HmEventKind::SchedOverrun { .. }))
            .all(|e| e.partition == Some(PAYLOAD));
        assert!(all_payload);
    });
}

#[test]
fn suspended_partitions_consume_no_execution_time() {
    let (mut kernel, mut guests) = EagleEye.boot(KernelBuild::Legacy);
    // Suspend AOCS via a direct management hypercall from FDIR.
    let hc = xtratum::hypercall::RawHypercall::new(
        xtratum::hypercall::HypercallId::SuspendPartition,
        vec![AOCS as u64],
    )
    .unwrap();
    let r = kernel.hypercall(FDIR, &hc);
    assert_eq!(r.result, xtratum::kernel::HcResult::Ret(0));
    kernel.run_major_frames(&mut guests, 3);
    // AOCS never ran: its gyro port was never created.
    assert_eq!(kernel.port_count(AOCS), 0);
    assert_eq!(kernel.partition_status(AOCS), Some(PartitionStatus::Suspended));
}
