//! Property tests for the Eq. (1) dataset generator (`skrt::generator`).
//!
//! The Cartesian iterator is the substrate every campaign stands on; its
//! invariants are pinned here independently of any kernel or testbed:
//! canonical enumeration order, `ExactSizeIterator` bookkeeping across
//! partial consumption, the empty-matrix convention, and saturation of
//! `combinations_total` on adversarial matrices.

use skrt::dictionary::TestValue;
use skrt::generator::{combinations_total, CartesianIter};

fn vals(xs: &[u64]) -> Vec<TestValue> {
    xs.iter().map(|&x| TestValue::scalar(x)).collect()
}

/// Canonical order is "last parameter varies fastest", i.e. dataset `k`
/// is `k` written in the mixed-radix system of the per-parameter set
/// sizes, most-significant digit first — exactly nested C loops.
#[test]
fn enumeration_is_mixed_radix_counting() {
    let matrix = vec![vals(&[10, 11]), vals(&[20, 21, 22]), vals(&[30, 31])];
    let radices = [2u64, 3, 2];
    let datasets: Vec<Vec<u64>> =
        CartesianIter::new(matrix.clone()).map(|ds| ds.iter().map(|v| v.raw).collect()).collect();
    assert_eq!(datasets.len() as u64, combinations_total(&matrix));
    for (k, ds) in datasets.iter().enumerate() {
        let mut rem = k as u64;
        let mut expected = vec![0u64; 3];
        for i in (0..3).rev() {
            expected[i] = matrix[i][(rem % radices[i]) as usize].raw;
            rem /= radices[i];
        }
        assert_eq!(ds, &expected, "dataset {k} is not mixed-radix canonical");
    }
    // Adjacent datasets differ in the last parameter first.
    assert_eq!(datasets[0], vec![10, 20, 30]);
    assert_eq!(datasets[1], vec![10, 20, 31]);
    assert_eq!(datasets[2], vec![10, 21, 30]);
}

/// `len()` must stay exact while the iterator is being drained, at every
/// intermediate position, and `nth_dataset` must agree with iteration
/// even after partial consumption.
#[test]
fn exact_size_holds_across_partial_consumption() {
    let matrix = vec![vals(&[0, 1, 2]), vals(&[5, 6]), vals(&[7, 8, 9])];
    let total = combinations_total(&matrix) as usize;
    assert_eq!(total, 18);

    let mut it = CartesianIter::new(matrix.clone());
    let all: Vec<_> = CartesianIter::new(matrix).collect();
    for (consumed, expected) in all.iter().enumerate() {
        assert_eq!(it.len(), total - consumed, "len wrong after {consumed} items");
        let (lo, hi) = it.size_hint();
        assert_eq!((lo, hi), (total - consumed, Some(total - consumed)));
        // nth_dataset indexes the *matrix*, independent of the cursor.
        assert_eq!(it.nth_dataset(consumed as u64).as_ref(), Some(expected));
        assert_eq!(it.next().as_ref(), Some(expected));
    }
    assert_eq!(it.len(), 0);
    assert_eq!(it.next(), None);
    assert_eq!(it.len(), 0, "exhausted iterator stays empty");
    assert_eq!(it.next(), None, "fused after exhaustion");
}

/// A parameter-less call has exactly one (empty) dataset; any empty
/// value set collapses the whole product to zero.
#[test]
fn empty_matrix_and_empty_set_conventions() {
    assert_eq!(combinations_total(&[]), 1, "empty product is 1");
    let mut it = CartesianIter::new(vec![]);
    assert_eq!(it.len(), 1);
    assert_eq!(it.next(), Some(vec![]));
    assert_eq!(it.next(), None);

    for position in 0..3 {
        let mut matrix = vec![vals(&[1, 2]), vals(&[3]), vals(&[4, 5])];
        matrix[position] = vec![];
        assert_eq!(combinations_total(&matrix), 0, "empty set at {position}");
        let mut it = CartesianIter::new(matrix);
        assert_eq!(it.len(), 0);
        assert_eq!(it.next(), None);
    }
}

/// Adversarial matrices whose true total exceeds `u64::MAX` must
/// saturate, never wrap — and in particular never wrap to zero or to a
/// small plausible-looking number.
#[test]
fn combinations_total_saturates_instead_of_wrapping() {
    // 2^64 exactly: 64 binary parameters. Wrapping arithmetic gives 0.
    let pow64: Vec<Vec<TestValue>> = (0..64).map(|_| vals(&[0, 1])).collect();
    assert_eq!(combinations_total(&pow64), u64::MAX);

    // 5^32 > 2^64: wraps to a nonzero garbage value under wrapping mul.
    let five32: Vec<Vec<TestValue>> = (0..32).map(|_| vals(&[0, 1, 2, 3, 4])).collect();
    assert_eq!(combinations_total(&five32), u64::MAX);

    // A zero-width parameter collapses an otherwise-overflowing matrix
    // no matter where it sits: "no datasets" beats "too many datasets".
    let mut with_empty_first = five32.clone();
    with_empty_first[0] = vec![];
    assert_eq!(combinations_total(&with_empty_first), 0);
    let mut with_empty_last = five32;
    with_empty_last.push(vec![]);
    assert_eq!(combinations_total(&with_empty_last), 0);

    // A non-overflowing case near the boundary stays exact.
    let exact: Vec<Vec<TestValue>> =
        (0..4).map(|_| vals(&(0..65535).collect::<Vec<_>>())).collect();
    assert_eq!(combinations_total(&exact), 65535u64.pow(4));
}
